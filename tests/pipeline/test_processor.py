"""End-to-end pipeline behaviour."""

import pytest

from repro.config import decentralized_config, default_config
from repro.core import StaticController
from repro.errors import SimulationError
from repro.pipeline.processor import ClusteredProcessor, simulate
from repro.pipeline.monolithic import simulate_monolithic
from repro.workloads.instruction import Instr, OpClass, Trace


class TestCompletion:
    def test_all_instructions_commit(self, parallel_trace, config16):
        stats = simulate(parallel_trace, config16)
        assert stats.committed == len(parallel_trace)

    def test_serial_trace_completes(self, serial_trace, config16):
        stats = simulate(serial_trace, config16)
        assert stats.committed == len(serial_trace)

    def test_decentralized_completes(self, parallel_trace):
        stats = simulate(parallel_trace, decentralized_config(16))
        assert stats.committed == len(parallel_trace)

    def test_max_instructions_honoured(self, parallel_trace, config16):
        stats = simulate(parallel_trace, config16, max_instructions=1000)
        assert 1000 <= stats.committed <= 1000 + 16  # commit-width slack

    def test_empty_iterations_guard(self):
        trace = Trace("tiny", [Instr(0, 0, OpClass.INT_ALU)])
        stats = simulate(trace, default_config(2))
        assert stats.committed == 1


class TestDeterminism:
    def test_repeated_runs_identical(self, serial_trace, config16):
        a = simulate(serial_trace, config16)
        b = simulate(serial_trace, config16)
        assert a.cycles == b.cycles
        assert a.committed == b.committed
        assert a.mispredicts == b.mispredicts
        assert a.l1_hits == b.l1_hits


class TestOrderings:
    def test_monolithic_beats_clustered(self, parallel_trace):
        """Zero-communication monolithic is an upper bound (same window)."""
        mono = simulate_monolithic(parallel_trace)
        clustered = simulate(parallel_trace, default_config(16))
        assert mono.ipc > clustered.ipc

    def test_parallel_code_scales_with_clusters(self, parallel_trace, config16):
        few = simulate(parallel_trace, config16, controller=StaticController(2))
        many = simulate(parallel_trace, config16, controller=StaticController(16))
        assert many.ipc > few.ipc * 1.1

    def test_serial_code_prefers_few_clusters(self, serial_trace, config16):
        few = simulate(serial_trace, config16, controller=StaticController(4))
        many = simulate(serial_trace, config16, controller=StaticController(16))
        assert few.ipc >= many.ipc * 0.95  # at best marginal gains from 16


class TestAccounting:
    def test_cycle_and_commit_counters(self, parallel_trace, config16):
        stats = simulate(parallel_trace, config16)
        assert stats.cycles > 0
        assert stats.dispatched == stats.committed
        assert stats.issued == stats.committed

    def test_branch_and_memref_counts_match_trace(self, parallel_trace, config16):
        stats = simulate(parallel_trace, config16)
        assert stats.branches == parallel_trace.branch_count
        assert stats.memrefs == parallel_trace.memref_count

    def test_distant_commits_present_for_parallel_code(self, parallel_trace, config16):
        stats = simulate(parallel_trace, config16)
        assert stats.distant_commits > 0

    def test_distant_commits_rare_for_serial_code(self, serial_trace, parallel_trace, config16):
        s = simulate(serial_trace, config16)
        p = simulate(parallel_trace, config16)
        assert s.distant_commits / len(serial_trace) < p.distant_commits / len(parallel_trace)

    def test_cluster_cycle_product(self, parallel_trace, config16):
        stats = simulate(parallel_trace, config16, controller=StaticController(4))
        assert stats.avg_active_clusters <= 4.01


class TestReconfiguration:
    def test_set_active_clusters_clamped(self, parallel_trace, config16):
        proc = ClusteredProcessor(parallel_trace, config16)
        proc.set_active_clusters(99)
        assert proc.active_clusters == 16
        proc.set_active_clusters(0)
        assert proc.active_clusters == 1

    def test_disabled_clusters_drain(self, parallel_trace, config16):
        proc = ClusteredProcessor(parallel_trace, config16)
        for _ in range(300):
            proc.step()
        proc.set_active_clusters(2)
        proc.run()
        assert proc.stats.committed == len(parallel_trace)
        # nothing left anywhere, including disabled clusters
        assert all(c.reset_for_drain_check() for c in proc.clusters)

    def test_static_controller_restricts_dispatch(self, parallel_trace, config16):
        proc = ClusteredProcessor(parallel_trace, config16, StaticController(4))
        proc.run()
        # clusters 4..15 never received instructions
        assert all(c.reset_for_drain_check() for c in proc.clusters[4:])

    def test_same_count_is_noop(self, parallel_trace, config16):
        proc = ClusteredProcessor(parallel_trace, config16)
        proc.set_active_clusters(16)
        assert proc.stats.reconfigurations == 0

    def test_decentralized_reconfig_stalls_dispatch(self, parallel_trace):
        proc = ClusteredProcessor(parallel_trace, decentralized_config(16))
        for _ in range(500):
            proc.step()
        before = proc.cycle
        proc.set_active_clusters(4)
        if proc.stats.flush_writebacks:
            assert proc._dispatch_stalled_until > before
        proc.run()
        assert proc.stats.committed == len(parallel_trace)


class TestControllerHooks:
    def test_on_commit_called_per_instruction(self, parallel_trace, config16):
        calls = []

        class Probe(StaticController):
            def on_commit(self, instr, cycle, distant):
                calls.append(instr.index)

        simulate(parallel_trace, config16, controller=Probe(8))
        assert len(calls) == len(parallel_trace)
        assert calls == sorted(calls)  # in-order commit

    def test_on_dispatch_opt_in(self, parallel_trace, config16):
        seen = []

        class Probe(StaticController):
            needs_dispatch_events = True

            def on_dispatch(self, instr, cycle):
                seen.append(instr.index)

        simulate(parallel_trace, config16, controller=Probe(8))
        assert len(seen) == len(parallel_trace)


class TestWedgeDetection:
    def test_wedged_pipeline_raises(self, config16):
        """A processor that can never finish must raise, not hang."""
        trace = Trace("t", [Instr(0, 0, OpClass.INT_ALU)])
        proc = ClusteredProcessor(trace, config16)
        proc.fetch_unit.pending_mispredict = 12345  # never resolved
        with pytest.raises(SimulationError):
            proc.run()
