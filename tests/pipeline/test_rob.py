"""Reorder buffer and in-flight instruction records."""

import pytest

from repro.errors import SimulationError
from repro.pipeline.rob import InFlight, ReorderBuffer
from repro.workloads.instruction import Instr, OpClass


def _rec(index, op=OpClass.INT_ALU, cluster=0):
    return InFlight(Instr(index, 4 * index, op), cluster, dispatch_cycle=1, earliest_issue=2)


class TestReorderBuffer:
    def test_fifo_order(self):
        rob = ReorderBuffer(4)
        a, b = _rec(0), _rec(1)
        rob.push(a)
        rob.push(b)
        assert rob.head is a
        assert rob.pop_head() is a
        assert rob.pop_head() is b

    def test_capacity(self):
        rob = ReorderBuffer(2)
        rob.push(_rec(0))
        rob.push(_rec(1))
        assert rob.full
        with pytest.raises(SimulationError):
            rob.push(_rec(2))

    def test_empty_access_raises(self):
        rob = ReorderBuffer(2)
        with pytest.raises(SimulationError):
            rob.head
        with pytest.raises(SimulationError):
            rob.pop_head()

    def test_head_index(self):
        rob = ReorderBuffer(4)
        assert rob.head_index == -1
        rob.push(_rec(7))
        assert rob.head_index == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            ReorderBuffer(0)


class TestInFlightOperands:
    def test_known_operands_set_ready_time(self):
        rec = _rec(5)
        rec.op_avail = [None, None]
        rec.unknown_ops = 2
        rec.operand_known(0, 10)
        assert rec.unknown_ops == 1
        rec.operand_known(1, 30)
        assert rec.unknown_ops == 0
        assert rec.ready_time == 30

    def test_store_splits_data_operand(self):
        rec = _rec(5, op=OpClass.STORE)
        assert rec.store_split
        rec.op_avail = [None, None]
        rec.unknown_ops = 1  # only the address operand counts
        rec.operand_known(1, 99)  # data operand: does not affect readiness
        assert rec.unknown_ops == 1
        rec.operand_known(0, 10)
        assert rec.unknown_ops == 0
        assert rec.ready_time == 10  # data availability ignored for issue

    def test_store_data_after_issue_sets_finish(self):
        rec = _rec(5, op=OpClass.STORE)
        rec.op_avail = [0, None]
        rec.addr_done = 20
        rec.operand_known(1, 35)
        assert rec.finish_cycle == 35
        rec2 = _rec(6, op=OpClass.STORE)
        rec2.op_avail = [0, None]
        rec2.addr_done = 50
        rec2.operand_known(1, 35)
        assert rec2.finish_cycle == 50  # address dominated

    def test_non_store_ready_uses_both_operands(self):
        rec = _rec(5, op=OpClass.INT_ALU)
        rec.op_avail = [None, 40]
        rec.unknown_ops = 1
        rec.operand_known(0, 15)
        assert rec.ready_time == 40
