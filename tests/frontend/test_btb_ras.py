"""BTB and return-address stack."""

import pytest

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ras import ReturnAddressStack


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(sets=16, assoc=2)
        assert btb.lookup(0x40) is None
        btb.update(0x40, 0x100)
        assert btb.lookup(0x40) == 0x100

    def test_update_overwrites(self):
        btb = BranchTargetBuffer(sets=16, assoc=2)
        btb.update(0x40, 0x100)
        btb.update(0x40, 0x200)
        assert btb.lookup(0x40) == 0x200

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(sets=4, assoc=2)
        # three PCs mapping to set 0 (pc>>2 & 3 == 0)
        a, b, c = 0x00, 0x10, 0x20
        btb.update(a, 1)
        btb.update(b, 2)
        btb.lookup(a)  # a becomes MRU
        btb.update(c, 3)  # evicts b (LRU)
        assert btb.lookup(a) == 1
        assert btb.lookup(b) is None
        assert btb.lookup(c) == 3

    def test_different_sets_do_not_interfere(self):
        btb = BranchTargetBuffer(sets=4, assoc=1)
        btb.update(0x00, 1)
        btb.update(0x04, 2)
        assert btb.lookup(0x00) == 1
        assert btb.lookup(0x04) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(sets=3)
        with pytest.raises(ValueError):
            BranchTargetBuffer(sets=4, assoc=0)


class TestRAS:
    def test_lifo_order(self):
        ras = ReturnAddressStack(8)
        ras.push(0x10)
        ras.push(0x20)
        assert ras.pop() == 0x20
        assert ras.pop() == 0x10

    def test_empty_pop_returns_none(self):
        assert ReturnAddressStack(4).pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert len(ras) == 2
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)
