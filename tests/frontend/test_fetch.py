"""Fetch unit: width, basic-block limits, mispredict stalls, queue timing."""

from repro.config import FrontEndConfig
from repro.stats import SimStats
from repro.frontend.fetch import FetchUnit
from repro.workloads.instruction import Instr, OpClass, Trace


def _alu(i, pc=None):
    return Instr(i, pc if pc is not None else 4 * i, OpClass.INT_ALU)


def _branch(i, pc, taken, target=0x5000, **kw):
    return Instr(i, pc, OpClass.BRANCH, taken=taken, target=target, **kw)


def _trace(instrs):
    return Trace("t", instrs)


def _unit(trace, **kw):
    config = FrontEndConfig(**kw)
    return FetchUnit(trace, config, SimStats())


class TestBandwidth:
    def test_fetch_width_limit(self):
        trace = _trace([_alu(i) for i in range(20)])
        f = _unit(trace)
        f.fetch(1)
        assert f.queue_length == 8

    def test_two_basic_blocks_per_cycle(self):
        instrs = []
        for i in range(12):
            if i % 3 == 2:
                instrs.append(_branch(i, 4 * i, taken=False))
            else:
                instrs.append(_alu(i))
        f = _unit(_trace(instrs))
        # pre-train the direction predictor so neither branch mispredicts
        for pc in (8, 20):
            for _ in range(4):
                f.predictor.update(pc, False)
        f.fetch(1)
        # stops after the second branch (index 5), even though width is 8
        assert f.queue_length == 6

    def test_queue_capacity(self):
        trace = _trace([_alu(i) for i in range(200)])
        f = _unit(trace, fetch_queue_size=16)
        for cycle in range(1, 10):
            f.fetch(cycle)
        assert f.queue_length == 16


class TestPipelineDepth:
    def test_instructions_ready_after_depth(self):
        trace = _trace([_alu(i) for i in range(4)])
        f = _unit(trace, pipeline_depth=12)
        f.fetch(1)
        assert f.peek_ready(5) is None
        assert f.peek_ready(13) is not None

    def test_pop_preserves_order(self):
        trace = _trace([_alu(i) for i in range(4)])
        f = _unit(trace)
        f.fetch(1)
        got = []
        while f.peek_ready(100) is not None:
            got.append(f.pop().index)
        assert got == [0, 1, 2, 3]


class TestMisprediction:
    def _mispredicting_trace(self):
        # a branch whose direction the fresh predictor gets right (weakly
        # taken counters predict taken) but whose target is unknown -> BTB
        # misfetch on first encounter
        return _trace([_alu(0), _branch(1, 0x40, taken=True), _alu(2), _alu(3)])

    def test_stall_until_resolved(self):
        f = _unit(self._mispredicting_trace())
        f.fetch(1)
        assert f.pending_mispredict == 1
        assert f.queue_length == 2  # the branch itself was fetched
        f.fetch(2)
        assert f.queue_length == 2  # stalled
        f.branch_resolved(1, resume_cycle=20)
        f.fetch(10)
        assert f.queue_length == 2  # still before resume
        f.fetch(20)
        assert f.queue_length == 4

    def test_mispredict_counted(self):
        f = _unit(self._mispredicting_trace())
        f.fetch(1)
        assert f.stats.mispredicts == 1

    def test_resolution_of_other_branch_ignored(self):
        f = _unit(self._mispredicting_trace())
        f.fetch(1)
        f.branch_resolved(99, resume_cycle=5)
        assert f.pending_mispredict == 1

    def test_predictable_branch_does_not_stall(self):
        # not-taken branch: fresh bimodal predicts taken -> mispredict; train
        # first via repeated outcomes using a small deterministic trace
        instrs = []
        idx = 0
        for rep in range(30):
            instrs.append(_branch(idx, 0x40, taken=True, target=0x80))
            idx += 1
        f = _unit(_trace(instrs))
        cycle = 0
        resolved = 0
        while not f.exhausted and cycle < 1000:
            cycle += 1
            f.fetch(cycle)
            if f.pending_mispredict is not None:
                f.branch_resolved(f.pending_mispredict, cycle + 1)
                resolved += 1
            while f.peek_ready(cycle) is not None:
                f.pop()
        # after the first misfetch, the loop branch is fully predictable
        assert f.stats.mispredicts <= 2


class TestCallReturn:
    def test_ras_predicts_matched_return(self):
        instrs = [
            _branch(0, 0x40, taken=True, target=0x1000, is_call=True),
            _alu(1, pc=0x1000),
            _branch(2, 0x1004, taken=True, target=0x44, is_return=True),
            _alu(3, pc=0x44),
        ]
        f = _unit(_trace(instrs))
        cycle = 0
        while not f.exhausted and cycle < 200:
            cycle += 1
            f.fetch(cycle)
            if f.pending_mispredict is not None:
                f.branch_resolved(f.pending_mispredict, cycle + 1)
            while f.peek_ready(cycle) is not None:
                f.pop()
        # the call misses the BTB once; the return must be RAS-predicted
        assert f.stats.mispredicts <= 1


class TestExhaustion:
    def test_exhausted_after_drain(self):
        trace = _trace([_alu(i) for i in range(3)])
        f = _unit(trace)
        assert not f.exhausted
        f.fetch(1)
        while f.peek_ready(50) is not None:
            f.pop()
        assert f.exhausted
