"""Branch direction predictors: bimodal, two-level, combining."""

import random

import pytest

from repro.frontend.bimodal import BimodalPredictor
from repro.frontend.combining import CombiningPredictor
from repro.frontend.twolevel import TwoLevelPredictor


def _accuracy(pred, stream):
    correct = 0
    for pc, taken in stream:
        if pred.predict(pc) == taken:
            correct += 1
        pred.update(pc, taken)
    return correct / len(stream)


def _biased_stream(pc, p_taken, n, seed=1):
    rng = random.Random(seed)
    return [(pc, rng.random() < p_taken) for _ in range(n)]


def _pattern_stream(pc, period, n):
    return [(pc, (i % period) != period - 1) for i in range(n)]


class TestBimodal:
    def test_learns_strong_bias(self):
        assert _accuracy(BimodalPredictor(), _biased_stream(0x40, 0.98, 2000)) > 0.95

    def test_learns_never_taken(self):
        assert _accuracy(BimodalPredictor(), _biased_stream(0x40, 0.0, 500)) > 0.97

    def test_cannot_learn_long_pattern(self):
        acc = _accuracy(BimodalPredictor(), _pattern_stream(0x40, 8, 2000))
        assert acc < 0.95  # misses the periodic not-taken

    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(1000)

    def test_independent_counters(self):
        p = BimodalPredictor(16)
        for _ in range(10):
            p.update(0x00, True)
            p.update(0x04, False)
        assert p.predict(0x00) is True
        assert p.predict(0x04) is False


class TestTwoLevel:
    def test_learns_pattern(self):
        acc = _accuracy(TwoLevelPredictor(), _pattern_stream(0x40, 4, 4000))
        assert acc > 0.97  # history makes the period predictable

    def test_learns_bias(self):
        assert _accuracy(TwoLevelPredictor(), _biased_stream(0x40, 0.99, 3000)) > 0.93

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoLevelPredictor(l1_size=1000)
        with pytest.raises(ValueError):
            TwoLevelPredictor(l2_size=4097)
        with pytest.raises(ValueError):
            TwoLevelPredictor(history_bits=0)


class TestCombining:
    def test_beats_bimodal_on_patterns(self):
        stream = _pattern_stream(0x40, 6, 5000)
        comb = _accuracy(CombiningPredictor(), list(stream))
        bim = _accuracy(BimodalPredictor(), list(stream))
        assert comb > bim

    def test_tracks_bias_like_bimodal(self):
        assert _accuracy(CombiningPredictor(), _biased_stream(0x40, 0.97, 3000)) > 0.9

    def test_chooser_size_validation(self):
        with pytest.raises(ValueError):
            CombiningPredictor(chooser_size=1000)

    def test_from_config_uses_table1_sizes(self):
        from repro.config import FrontEndConfig

        pred = CombiningPredictor.from_config(FrontEndConfig())
        assert pred.bimodal.size == 2048
        assert pred.twolevel.l1_size == 1024
        assert pred.twolevel.l2_size == 4096

    def test_mixed_workload_accuracy(self):
        """Interleaved biased + pattern branches: the tournament should
        serve both site types well."""
        rng = random.Random(3)
        stream = []
        for i in range(4000):
            stream.append((0x100, rng.random() < 0.95))
            stream.append((0x200, (i % 4) != 3))
        assert _accuracy(CombiningPredictor(), stream) > 0.9


class TestPredictUpdateFusion:
    """``predict_update(pc, taken)`` is the fetch hot path's fused form;
    it must return exactly what ``predict`` would have, and leave the
    predictor in exactly the state ``update`` would have."""

    @pytest.mark.parametrize(
        "factory", [BimodalPredictor, TwoLevelPredictor, CombiningPredictor]
    )
    def test_equivalent_to_predict_then_update(self, factory):
        fused, split = factory(), factory()
        rng = random.Random(17)
        stream = []
        for i in range(3000):
            pc = 0x400 + 4 * rng.randrange(64)
            taken = rng.random() < (0.9 if pc % 8 else 0.2)
            stream.append((pc, taken))
            if i % 5 == 0:  # periodic pattern sites exercise the history
                stream.append((0x40, (i % 3) != 0))
        for pc, taken in stream:
            expected = split.predict(pc)
            split.update(pc, taken)
            assert fused.predict_update(pc, taken) == expected
        # state equivalence: both predictors answer identically afterwards
        for pc in range(0x400, 0x500, 4):
            assert fused.predict(pc) == split.predict(pc)
