"""Error hierarchy."""

import pytest

from repro.errors import ConfigError, ReproError, SimulationError, WorkloadError


def test_hierarchy():
    assert issubclass(ConfigError, ReproError)
    assert issubclass(SimulationError, ReproError)
    assert issubclass(WorkloadError, ReproError)


def test_catchable_as_base():
    with pytest.raises(ReproError):
        raise ConfigError("bad config")


def test_distinct_types():
    assert not issubclass(ConfigError, SimulationError)
    assert not issubclass(WorkloadError, ConfigError)
