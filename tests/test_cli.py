"""Command-line interface."""

import pytest

from repro.cli import _parse_benchmarks, _run_policy, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "gzip"])
        assert args.benchmark == "gzip"
        assert args.clusters == 16
        assert args.machine == "ring"

    def test_exhibit_args(self):
        args = build_parser().parse_args(["figure3", "--benchmarks", "gzip,swim"])
        assert args.benchmarks == "gzip,swim"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "quake"])


class TestHelpers:
    def test_run_policy_mapping(self):
        assert _run_policy("ring", "static", 4) == "static-4"
        assert _run_policy("grid", "explore", 4) == "explore"
        assert _run_policy("decentralized", "no-explore", 8) == "no-explore"
        assert _run_policy("ring", "finegrain", 16) == "finegrain"
        assert _run_policy("ring", "subroutine", 16) == "subroutine"
        # monolithic has no clustering to reconfigure
        assert _run_policy("monolithic", "explore", 4) == "none"

    def test_parse_benchmarks(self):
        assert len(_parse_benchmarks("")) == 9
        assert _parse_benchmarks("gzip, swim") == ("gzip", "swim")
        with pytest.raises(SystemExit):
            _parse_benchmarks("gzip,quake")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "swim" in out

    def test_run_static(self, capsys):
        rc = main(["run", "gzip", "--length", "4000", "--warmup", "500",
                   "--clusters", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC" in out

    def test_run_monolithic(self, capsys):
        rc = main(["run", "swim", "--length", "4000", "--warmup", "500",
                   "--machine", "monolithic"])
        assert rc == 0

    def test_exhibit_subset(self, capsys):
        rc = main(["figure3", "--benchmarks", "gzip", "--length", "4000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "gzip" in out

    def test_table3_subset(self, capsys):
        rc = main(["table3", "--benchmarks", "swim", "--length", "4000"])
        assert rc == 0
        assert "Table 3" in capsys.readouterr().out

    def test_exhibit_jobs_and_no_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main(["figure3", "--benchmarks", "gzip", "--length", "4000",
                   "--jobs", "1", "--no-cache"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "Figure 3" in captured.out
        assert "Sweep metrics" in captured.err
        assert list(tmp_path.iterdir()) == []  # --no-cache: nothing written

    def test_exhibit_uses_cache_dir_env(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main(["figure3", "--benchmarks", "gzip", "--length", "4000",
                   "--jobs", "1"])
        assert rc == 0
        capsys.readouterr()
        assert list(tmp_path.glob("*.pkl"))

    def test_exhibit_metrics_json(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out_path = tmp_path / "metrics.json"
        rc = main(["table3", "--benchmarks", "swim", "--length", "4000",
                   "--jobs", "1", "--metrics-json", str(out_path)])
        assert rc == 0
        capsys.readouterr()
        snapshot = json.loads(out_path.read_text())
        assert snapshot["jobs"] == 1
        assert snapshot["completed"] == 1
        assert snapshot["p50_run_seconds"] >= 0

    def test_jobs_flag_parses(self):
        args = build_parser().parse_args(["figure5", "--jobs", "4", "--no-cache"])
        assert args.jobs == 4 and args.no_cache

    def test_resume_and_journal_flags_parse(self):
        args = build_parser().parse_args(
            ["figure3", "--resume", "--journal", "/tmp/j.jsonl"]
        )
        assert args.resume and args.journal == "/tmp/j.jsonl"
        args = build_parser().parse_args(["figure3"])
        assert not args.resume and args.journal is None

    def test_trace_flag_parses_everywhere(self):
        args = build_parser().parse_args(["run", "gzip", "--trace", "/tmp/t"])
        assert args.trace == "/tmp/t"
        args = build_parser().parse_args(["figure3", "--trace", "/tmp/t"])
        assert args.trace == "/tmp/t"
        assert build_parser().parse_args(["run", "gzip"]).trace is None

    def test_run_trace_writes_session(self, capsys, tmp_path):
        rc = main(["run", "gzip", "--length", "4000", "--warmup", "500",
                   "--controller", "explore", "--trace",
                   str(tmp_path / "out")])
        assert rc == 0
        for name in ("events.jsonl", "timeline.csv", "trace.json"):
            assert (tmp_path / "out" / name).exists()
        assert "trace written" in capsys.readouterr().err

    def test_exhibit_trace_writes_sweep_profile(self, capsys, tmp_path,
                                                monkeypatch):
        import json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        rc = main(["figure3", "--benchmarks", "gzip", "--length", "4000",
                   "--jobs", "1", "--no-cache", "--trace",
                   str(tmp_path / "prof")])
        assert rc == 0
        capsys.readouterr()
        snapshot = json.loads((tmp_path / "prof" /
                               "sweep_metrics.json").read_text())
        assert snapshot["specs"], "per-spec timings must be recorded"
        trace = json.loads((tmp_path / "prof" /
                            "sweep_trace.json").read_text())
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])


class TestHelpText:
    """The top-level help must advertise every subsystem (regression:
    it silently omitted the analysis entry point and the sweep flags)."""

    def test_epilog_mentions_analysis_and_sweep_flags(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "python -m repro.analysis" in out
        for flag in ("--jobs", "--no-cache", "--timeout", "--metrics-json",
                     "--journal", "--resume", "--trace", "--backend",
                     "--workers"):
            assert flag in out, f"top-level help must mention {flag}"
        for doc in ("docs/SWEEPS.md", "docs/OBSERVABILITY.md",
                    "docs/ANALYSIS.md", "docs/ARCHITECTURE.md"):
            assert doc in out

    def test_subcommand_help_documents_trace(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure3", "--help"])
        assert "sweep_trace.json" in capsys.readouterr().out


class TestFaultReporting:
    def test_failed_run_exits_nonzero_with_failure_table(
        self, capsys, monkeypatch
    ):
        """An exhibit with a hole in its matrix must not render: the CLI
        prints the failure table to stderr and exits 1."""
        from repro.faults import FAULT_PLAN_ENV, FaultPlan

        monkeypatch.setenv(
            FAULT_PLAN_ENV, FaultPlan(fail_profiles=("gzip",)).to_json()
        )
        rc = main(["figure3", "--benchmarks", "gzip", "--length", "4000",
                   "--jobs", "1", "--no-cache"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "Figure 3" not in captured.out  # no partial exhibit rendered
        assert "Sweep failures" in captured.err
        assert "gzip" in captured.err and "FaultInjected" in captured.err

    def test_journal_resume_round_trip(self, capsys, tmp_path):
        journal = tmp_path / "figure3.jsonl"
        args = ["figure3", "--benchmarks", "gzip", "--length", "4000",
                "--jobs", "1", "--no-cache", "--journal", str(journal)]
        assert main(args) == 0
        capsys.readouterr()
        assert journal.exists()
        assert main(args + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "Figure 3" in captured.out  # journal hits still render fully
        assert "resumed from journal" in captured.err
