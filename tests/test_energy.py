"""Leakage-energy accounting."""

import pytest

from repro import simulate
from repro.energy import EnergyModel, compare_energy, leakage_savings
from repro.stats import SimStats


class TestModel:
    def _stats(self, cycles=100, committed=200, active=4):
        s = SimStats(cycles=cycles, committed=committed)
        s.cluster_cycle_product = active * cycles
        return s

    def test_leakage_scales_with_active_clusters(self):
        model = EnergyModel()
        few = self._stats(active=4)
        many = self._stats(active=16)
        assert model.leakage(many) > model.leakage(few)

    def test_dynamic_scales_with_work(self):
        model = EnergyModel()
        small = self._stats(committed=100)
        large = self._stats(committed=1000)
        assert model.dynamic(large) > model.dynamic(small)

    def test_epi_zero_guard(self):
        assert EnergyModel().energy_per_committed_instruction(SimStats()) == 0.0

    def test_transfer_energy_counted(self):
        model = EnergyModel()
        s = self._stats()
        base = model.dynamic(s)
        s.register_transfer_cycles = 50
        assert model.dynamic(s) == base + 50 * model.energy_per_transfer_cycle


class TestLeakageSavings:
    def test_half_active_is_half_saved(self):
        s = SimStats(cycles=100)
        s.cluster_cycle_product = 8 * 100
        assert leakage_savings(s, 16) == pytest.approx(0.5)

    def test_all_active_saves_nothing(self):
        s = SimStats(cycles=100)
        s.cluster_cycle_product = 16 * 100
        assert leakage_savings(s, 16) == 0.0

    def test_zero_cycles_guard(self):
        assert leakage_savings(SimStats(), 16) == 0.0


class TestEndToEnd:
    def test_fewer_clusters_cost_less_leakage(self, serial_trace, config16):
        narrow = simulate(serial_trace, reconfig_policy="static-4").stats
        wide = simulate(serial_trace, reconfig_policy="static-16").stats
        report = compare_energy(wide, narrow, total_clusters=16)
        assert report["leakage_savings"] > 0.7  # 12 of 16 clusters gated
        assert report["epi_ratio"] < 1.0  # same work, less energy

    def test_compare_keys(self, serial_trace, config16):
        a = simulate(serial_trace, reconfig_policy="static-8").stats
        report = compare_energy(a, a, total_clusters=16)
        assert set(report) == {
            "baseline_epi", "tuned_epi", "leakage_savings", "epi_ratio",
        }
        assert report["epi_ratio"] == pytest.approx(1.0)
