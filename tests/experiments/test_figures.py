"""Exhibit entry points (structure checks on tiny runs)."""

import pytest

from repro.experiments.figures import (
    figure3,
    idealized_communication,
    print_figure3,
    print_idealized,
    sensitivity_variants,
)
from repro.experiments.tables import print_table3, print_table4, table3, table4

BENCHES = ("gzip", "swim")
LEN = 6_000


@pytest.fixture(scope="module")
def fig3_results():
    return figure3(benchmarks=BENCHES, trace_length=LEN)


class TestFigure3:
    def test_structure(self, fig3_results):
        assert set(fig3_results) == set(BENCHES)
        for by_scheme in fig3_results.values():
            assert set(by_scheme) == {f"static-{n}" for n in (2, 4, 8, 16)}
            for r in by_scheme.values():
                assert r.ipc > 0

    def test_static_n_limits_active_clusters(self, fig3_results):
        for by_scheme in fig3_results.values():
            assert by_scheme["static-2"].avg_active_clusters <= 2.01
            assert by_scheme["static-8"].avg_active_clusters <= 8.01

    def test_printout(self, fig3_results):
        text = print_figure3(fig3_results)
        assert "Figure 3" in text and "gzip" in text and "geomean" in text


class TestIdealized:
    def test_free_communication_never_hurts(self):
        results = idealized_communication(benchmarks=("swim",), trace_length=LEN)
        base = results["swim"]["baseline"].ipc
        assert results["swim"]["free-memory"].ipc >= base * 0.98
        assert results["swim"]["free-register"].ipc >= base * 0.98

    def test_printout(self):
        results = idealized_communication(benchmarks=("swim",), trace_length=LEN)
        text = print_idealized(results, "centralized")
        assert "free memory comm" in text


class TestSensitivityVariants:
    def test_variant_set(self):
        variants = sensitivity_variants()
        assert set(variants) == {
            "base", "fewer-resources", "more-resources", "more-fus", "double-hop",
        }
        assert variants["fewer-resources"].cluster.issue_queue_size == 10
        assert variants["more-resources"].cluster.regfile_size == 40
        assert variants["double-hop"].interconnect.hop_latency == 2
        assert variants["more-fus"].cluster.int_alus == 2


class TestTables:
    def test_table3(self):
        results = table3(benchmarks=BENCHES, trace_length=LEN)
        assert set(results) == set(BENCHES)
        text = print_table3(results)
        assert "Table 3" in text and "paper IPC" in text

    def test_table4(self):
        profiles = table4(benchmarks=("swim",), trace_length=LEN,
                          granularity=200, factors=(1, 2, 4))
        assert "swim" in profiles
        factors = profiles["swim"].factors
        assert 200 in factors
        text = print_table4(profiles)
        assert "Table 4" in text and "swim" in text


class TestDynamicExhibits:
    """Structure checks for the controller-sweep exhibits (tiny runs)."""

    def test_figure5_schemes_present(self):
        from repro.experiments.figures import figure5, print_figure5

        results = figure5(benchmarks=("swim",), trace_length=5_000)
        schemes = set(results["swim"])
        assert {"static-4", "static-16", "interval-explore"} <= schemes
        assert any(s.startswith("no-explore") for s in schemes)
        assert "Figure 5" in print_figure5(results)

    def test_figure6_schemes_present(self):
        from repro.experiments.figures import figure6, print_figure6

        results = figure6(benchmarks=("swim",), trace_length=5_000)
        schemes = set(results["swim"])
        assert {"finegrain-branch", "finegrain-subroutine"} <= schemes
        assert "Figure 6" in print_figure6(results)

    def test_figure7_decentralized_machine(self):
        from repro.experiments.figures import figure7, print_figure7

        results = figure7(benchmarks=("swim",), trace_length=5_000)
        assert results["swim"]["static-16"].ipc > 0
        text = print_figure7(results)
        assert "Figure 7" in text and "flush writebacks" in text

    def test_figure8_grid_machine(self):
        from repro.experiments.figures import figure8, print_figure8

        results = figure8(benchmarks=("swim",), trace_length=5_000)
        assert results["swim"]["static-16"].ipc > 0
        assert "Figure 8" in print_figure8(results)
