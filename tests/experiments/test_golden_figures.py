"""Golden regression tests for the paper figures.

Two layers of protection:

* the committed ``results/*.txt`` exhibits must keep showing the paper's
  qualitative findings (parsed directly — instant);
* miniature re-simulations of fig3/fig5/table3 must reproduce the same key
  orderings with today's code (marked ``slow``; still tier-1).

The mini runs use shorter traces and benchmark subsets than the full
benchmarks, with assertions calibrated to hold with margin at this scale.
"""

import pathlib
import re
import time

import pytest

from repro.experiments.figures import figure3, figure5
from repro.experiments.reporting import geomean
from repro.experiments.sweep import SweepConfig, SweepRunner
from repro.experiments.tables import table3

RESULTS = pathlib.Path(__file__).resolve().parent.parent.parent / "results"

#: mini-run scale: long enough for phase behaviour, short enough for CI
LEN = 15_000


def parse_exhibit(name):
    """Parse a ``format_table``-style results file into {row: {col: float}}.

    Column boundaries come from the row of dashes under the header, so
    multi-word column names ("base IPC") parse correctly.
    """
    return _parse_table((RESULTS / name).read_text().splitlines())


def parse_exhibit_blocks(name):
    """Parse a multi-table exhibit (blank-line separated) into a list."""
    blocks = [
        b for b in (RESULTS / name).read_text().split("\n\n") if b.strip()
    ]
    return [_parse_table(b.splitlines()) for b in blocks]


def _parse_table(lines):
    dash_idx = next(
        i
        for i, line in enumerate(lines)
        if line.strip() and set(line.strip()) <= {"-", " "}
    )
    spans = [m.span() for m in re.finditer(r"-+", lines[dash_idx])]
    # each column runs from its dashes to the start of the next column
    bounds = [
        (start, spans[i + 1][0] if i + 1 < len(spans) else None)
        for i, (start, _end) in enumerate(spans)
    ]

    def cut(line):
        return [line[a:b].strip() for a, b in bounds]

    header = cut(lines[dash_idx - 1])[1:]
    table = {}
    for line in lines[dash_idx + 1 :]:
        cells = cut(line)
        try:
            table[cells[0]] = dict(zip(header, map(float, cells[1:])))
        except ValueError:
            break  # footer lines below the table
    assert table, "no data rows found in exhibit table"
    return table


class TestCommittedExhibits:
    """The checked-in results files still carry the paper's findings."""

    def test_fig3_distant_ilp_codes_scale(self):
        table = parse_exhibit("fig3_static_clusters.txt")
        for bench in ("djpeg", "swim", "mgrid", "galgel"):
            assert table[bench]["static-16"] > table[bench]["static-4"], bench
        # branchy integer codes peak early and lose IPC at 16 clusters
        for bench in ("vpr", "parser", "crafty"):
            assert table[bench]["static-16"] <= table[bench]["static-4"], bench

    def test_fig5_dynamic_beats_best_static(self):
        table = parse_exhibit("fig5_interval_schemes.txt")
        gm = table["geomean"]
        best_static = max(gm["static-4"], gm["static-16"])
        # the headline result: interval-based reconfiguration tracks (and
        # without exploration overhead, beats) the best static base case
        assert gm["no-explore-500"] > best_static
        assert gm["interval-explore"] > best_static * 0.97

    def test_fig5_interval_explore_tracks_best_static_per_program(self):
        table = parse_exhibit("fig5_interval_schemes.txt")
        for bench in ("swim", "mgrid", "galgel"):
            best = max(table[bench]["static-4"], table[bench]["static-16"])
            assert table[bench]["interval-explore"] >= best * 0.90, bench

    def test_table3_characterization_orderings(self):
        table = parse_exhibit("table3_baseline.txt")
        ipc = {b: row["base IPC"] for b, row in table.items()}
        interval = {b: row["mispred interval"] for b, row in table.items()}
        # djpeg and galgel lead the IPC ordering (paper Table 3)
        assert min(ipc["djpeg"], ipc["galgel"]) > max(
            ipc["vpr"], ipc["parser"], ipc["crafty"]
        )
        # FP codes barely mispredict; integer codes do so every ~60-250
        assert min(interval["swim"], interval["mgrid"]) > 1_000
        assert max(interval["cjpeg"], interval["gzip"]) < 250


class TestCommittedMultiprog:
    """The checked-in fig_multiprog exhibit: 3 arbiters x 3 fabrics."""

    ARBITERS = ("comm-aware", "round-robin", "static")
    FABRICS = ("grid", "torus", "ring-of-rings")

    def test_matrix_is_complete(self):
        speedup, throughput, churn = parse_exhibit_blocks("fig_multiprog.txt")
        for table in (speedup, throughput, churn):
            assert set(table) == set(self.ARBITERS)
            for row in table.values():
                assert set(row) == set(self.FABRICS)

    def test_weighted_speedups_plausible(self):
        speedup = parse_exhibit_blocks("fig_multiprog.txt")[0]
        for arbiter in self.ARBITERS:
            for fabric in self.FABRICS:
                assert 0.85 < speedup[arbiter][fabric] < 1.15, (arbiter, fabric)

    def test_comm_aware_never_worse(self):
        # the contiguity-preserving allocator must not lose to either the
        # frozen partition or the id-ordered reclaimer on any fabric
        speedup = parse_exhibit_blocks("fig_multiprog.txt")[0]
        for fabric in self.FABRICS:
            best_other = max(
                speedup["static"][fabric], speedup["round-robin"][fabric]
            )
            assert speedup["comm-aware"][fabric] >= best_other - 0.005, fabric

    def test_static_never_rebalances_dynamic_arbiters_do(self):
        churn = parse_exhibit_blocks("fig_multiprog.txt")[2]
        for fabric in self.FABRICS:
            assert churn["static"][fabric] == 0, fabric
            assert churn["round-robin"][fabric] > 0, fabric
            assert churn["comm-aware"][fabric] > 0, fabric


class TestCommittedResilience:
    """The checked-in fig_resilience exhibit: topologies x policies x rates."""

    TOPOLOGIES = ("ring", "grid", "torus", "decentralized")
    POLICIES = ("none", "explore")
    RATES = ("faults=0", "faults=1", "faults=2", "faults=4")

    def test_matrix_is_complete(self):
        blocks = parse_exhibit_blocks("fig_resilience.txt")
        # one IPC block per topology, then the degraded-fraction block
        assert len(blocks) == len(self.TOPOLOGIES) + 1
        for table in blocks[:-1]:
            assert set(table) == set(self.POLICIES)
            for row in table.values():
                assert set(row) == set(self.RATES)
        degraded = blocks[-1]
        assert set(degraded) == set(self.TOPOLOGIES)

    def test_ipc_positive_and_faults_cost_throughput(self):
        blocks = parse_exhibit_blocks("fig_resilience.txt")
        for table in blocks[:-1]:
            for policy in self.POLICIES:
                for rate in self.RATES:
                    assert table[policy][rate] > 0, (policy, rate)
                # a degraded machine must not meaningfully outrun the
                # healthy one (small wins are steering-noise artifacts)
                healthy = table[policy]["faults=0"]
                assert table[policy]["faults=4"] <= healthy * 1.05, policy

    def test_degraded_fraction_tracks_injection(self):
        degraded = parse_exhibit_blocks("fig_resilience.txt")[-1]
        for topology in self.TOPOLOGIES:
            assert degraded[topology]["faults=0"] == 0, topology
            for rate in ("faults=1", "faults=2", "faults=4"):
                assert 0 < degraded[topology][rate] <= 1, (topology, rate)


@pytest.mark.slow
class TestMiniResilience:
    """Miniature fig_resilience re-simulation: deterministic and coherent."""

    TOPOLOGIES = ("ring", "grid")
    POLICIES = ("none", "explore")
    RATES = (0, 2)
    LEN = 4_000

    @pytest.fixture(scope="class")
    def results(self):
        from repro.experiments.figures import fig_resilience

        return fig_resilience(
            trace_length=self.LEN,
            topologies=self.TOPOLOGIES,
            policies=self.POLICIES,
            rates=self.RATES,
        )

    def test_matrix_complete(self, results):
        assert set(results) == set(self.TOPOLOGIES)
        for by_policy in results.values():
            assert set(by_policy) == set(self.POLICIES)
            for by_rate in by_policy.values():
                assert set(by_rate) == {"faults=0", "faults=2"}
                for metrics in by_rate.values():
                    assert metrics["ipc"] > 0

    def test_healthy_runs_are_clean(self, results):
        for topology in self.TOPOLOGIES:
            for policy in self.POLICIES:
                m = results[topology][policy]["faults=0"]
                assert m["faults_injected"] == 0, (topology, policy)
                assert m["degraded_frac"] == 0, (topology, policy)

    def test_faulted_runs_degrade(self, results):
        for topology in self.TOPOLOGIES:
            for policy in self.POLICIES:
                m = results[topology][policy]["faults=2"]
                assert m["faults_injected"] > 0, (topology, policy)
                assert m["degraded_frac"] > 0, (topology, policy)

    def test_rerun_is_identical(self, results):
        from repro.experiments.figures import fig_resilience

        again = fig_resilience(
            trace_length=self.LEN,
            topologies=self.TOPOLOGIES,
            policies=self.POLICIES,
            rates=self.RATES,
        )
        assert again == results


@pytest.mark.slow
class TestMiniMultiprog:
    """Miniature fig_multiprog re-simulation: deterministic and coherent."""

    FABRICS = ("grid", "ring-of-rings")
    LEN = 6_000

    @pytest.fixture(scope="class")
    def results(self):
        from repro.experiments.figures import fig_multiprog

        return fig_multiprog(
            benchmarks=("gzip", "swim"),
            trace_length=self.LEN,
            fabrics=self.FABRICS,
        )

    def test_matrix_complete(self, results):
        assert set(results) == {"comm-aware", "round-robin", "static"}
        for by_fabric in results.values():
            assert set(by_fabric) == set(self.FABRICS)
            for metrics in by_fabric.values():
                assert metrics["weighted_speedup"] > 0.5
                assert metrics["throughput_ipc"] > 0
                assert metrics["harmonic_mean_ipc"] > 0

    def test_static_has_zero_churn(self, results):
        for fabric in self.FABRICS:
            m = results["static"][fabric]
            assert m["arb_grants"] == 0 and m["arb_reclaims"] == 0

    def test_rerun_is_identical(self, results):
        from repro.experiments.figures import fig_multiprog

        again = fig_multiprog(
            benchmarks=("gzip", "swim"),
            trace_length=self.LEN,
            fabrics=self.FABRICS,
        )
        assert again == results


@pytest.mark.slow
class TestMiniFigure3:
    @pytest.fixture(scope="class")
    def results(self):
        return figure3(benchmarks=("swim", "vpr", "gzip"), trace_length=LEN)

    def test_distant_ilp_code_scales(self, results):
        assert results["swim"]["static-16"].ipc > results["swim"]["static-4"].ipc

    def test_branchy_code_does_not(self, results):
        vpr = results["vpr"]
        assert vpr["static-16"].ipc <= vpr["static-4"].ipc * 1.10

    def test_two_clusters_always_worst(self, results):
        for bench, by in results.items():
            best = max(r.ipc for r in by.values())
            assert by["static-2"].ipc < best, bench


@pytest.mark.slow
class TestMiniFigure5:
    BENCHES = ("swim", "mgrid", "gzip", "vpr")

    @pytest.fixture(scope="class")
    def results(self):
        return figure5(benchmarks=self.BENCHES, trace_length=LEN)

    def test_exploration_tracks_best_static_on_phased_profiles(self, results):
        for bench in ("swim", "mgrid"):
            by = results[bench]
            best = max(by["static-4"].ipc, by["static-16"].ipc)
            assert by["interval-explore"].ipc >= best * 0.85, bench

    def test_no_explore_beats_best_static_geomean(self, results):
        gm = {
            scheme: geomean(by[scheme].ipc for by in results.values())
            for scheme in next(iter(results.values()))
        }
        best_static = max(gm["static-4"], gm["static-16"])
        assert gm["no-explore-500"] > best_static * 0.97
        assert gm["interval-explore"] > best_static * 0.95

    def test_dynamic_schemes_reconfigure(self, results):
        assert any(
            by["interval-explore"].reconfigurations > 0 for by in results.values()
        )


@pytest.mark.slow
class TestMiniTable3:
    @pytest.fixture(scope="class")
    def results(self):
        return table3(benchmarks=("swim", "djpeg", "vpr", "cjpeg"), trace_length=LEN)

    def test_media_code_leads_ipc(self, results):
        assert results["djpeg"].ipc > results["vpr"].ipc
        assert results["djpeg"].ipc > results["cjpeg"].ipc

    def test_fp_code_barely_mispredicts(self, results):
        assert results["swim"].mispredict_interval > 1_000
        assert results["cjpeg"].mispredict_interval < 250


@pytest.mark.slow
class TestFig5SweepAcceptance:
    """The PR acceptance criterion: fig5 through SweepRunner(SweepConfig(jobs=4)) is
    identical to the serial path, and a second invocation is >= 5x faster
    through cache hits."""

    BENCHES = ("gzip", "swim", "vpr")
    LEN = 3_000

    def test_parallel_identical_then_cached_fast(self, tmp_path):
        serial = figure5(benchmarks=self.BENCHES, trace_length=self.LEN)

        parallel_runner = SweepRunner(SweepConfig(jobs=4, cache_dir=tmp_path, use_cache=True))
        t0 = time.perf_counter()
        parallel = figure5(
            benchmarks=self.BENCHES, trace_length=self.LEN, runner=parallel_runner
        )
        cold_seconds = time.perf_counter() - t0
        assert parallel_runner.metrics.cache_hits == 0

        for bench, by in serial.items():
            for scheme, result in by.items():
                assert parallel[bench][scheme].ipc == result.ipc, (bench, scheme)
                assert parallel[bench][scheme].committed == result.committed

        cached_runner = SweepRunner(SweepConfig(jobs=4, cache_dir=tmp_path, use_cache=True))
        t0 = time.perf_counter()
        cached = figure5(
            benchmarks=self.BENCHES, trace_length=self.LEN, runner=cached_runner
        )
        warm_seconds = time.perf_counter() - t0

        runs = len(self.BENCHES) * len(next(iter(serial.values())))
        assert cached_runner.metrics.cache_hits == runs
        assert cached_runner.metrics.cache_misses == 0
        for bench, by in serial.items():
            for scheme, result in by.items():
                assert cached[bench][scheme].ipc == result.ipc, (bench, scheme)

        assert cold_seconds >= 5 * warm_seconds, (cold_seconds, warm_seconds)
