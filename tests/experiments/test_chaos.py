"""Chaos suite: the sweep engine under injected faults.

Every scenario here must end in a *structured* record (or a resumable
journal) — an unhandled exception out of ``SweepRunner.run`` is a test
failure by construction.  Faults come from :mod:`repro.faults`; the kill
test uses a real ``SIGKILL``-ed child process.
"""

import os
import pickle
import signal
import subprocess
import sys
import textwrap

import pytest

import repro
from repro import faults
from repro.config import default_config
from repro.errors import SweepInterrupted
from repro.experiments.sweep import ControllerSpec, RunSpec, SweepConfig, SweepRunner

LEN = 3_000
SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def spec_for(profile, clusters=4, **kw):
    return RunSpec(
        profile=profile,
        trace_length=LEN,
        config=default_config(16),
        controller=ControllerSpec.static(clusters),
        label="chaos",
        **kw,
    )


FOUR_SPECS = ("gzip", "swim", "vpr", "crafty")


@pytest.fixture(autouse=True)
def no_leftover_plan():
    """Every test starts and ends with fault injection disarmed."""
    faults.clear_fault_plan()
    yield
    faults.clear_fault_plan()


def snapshot(records):
    return [r.result.stats.snapshot() for r in records]


class TestKillAndResume:
    """The acceptance scenario: SIGKILL a sweep, resume, bit-identical."""

    CHILD = textwrap.dedent(
        """
        import os, pickle, signal, sys

        from repro.experiments.sweep import SweepConfig, SweepRunner

        with open(sys.argv[1], "rb") as fh:
            specs = pickle.load(fh)

        done = 0
        def hook(event):
            global done
            done += 1
            if done == 2:  # two records journaled, then die mid-sweep
                os.kill(os.getpid(), signal.SIGKILL)

        runner = SweepRunner(SweepConfig(jobs=1, use_cache=False, journal=sys.argv[2]), progress=hook)
        runner.run(specs)
        """
    )

    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        specs = [spec_for(p) for p in FOUR_SPECS]
        spec_file = tmp_path / "specs.pkl"
        spec_file.write_bytes(pickle.dumps(specs))
        journal_path = tmp_path / "sweep.jsonl"

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", self.CHILD, str(spec_file), str(journal_path)],
            env=env,
            capture_output=True,
            timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        assert journal_path.exists()

        resumed = SweepRunner(SweepConfig(jobs=1, use_cache=False, journal=journal_path, resume=True))
        records = resumed.run(specs)
        assert resumed.metrics.journal_skips == 2
        assert [r.from_journal for r in records] == [True, True, False, False]

        reference = SweepRunner(SweepConfig(jobs=1, use_cache=False)).run(specs)
        assert snapshot(records) == snapshot(reference)
        assert [r.events for r in records] == [r.events for r in reference]


class TestSignalDrain:
    def test_sigint_drains_and_resume_completes(self, tmp_path):
        """First SIGINT: in-flight work finishes, partials are flushed,
        SweepInterrupted carries them out; a resumed sweep completes and
        the combined result matches an uninterrupted run."""
        journal_path = tmp_path / "sweep.jsonl"
        specs = [spec_for(p) for p in FOUR_SPECS]

        def interrupt_after_first(event):
            if event["completed"] == 1:
                os.kill(os.getpid(), signal.SIGINT)

        runner = SweepRunner(SweepConfig(jobs=1, use_cache=False, journal=journal_path), progress=interrupt_after_first)
        with pytest.raises(SweepInterrupted) as excinfo:
            runner.run(specs)
        partial = excinfo.value.completed
        assert 1 <= len(partial) < len(specs)
        assert all(r.ok for r in partial)

        resumed = SweepRunner(SweepConfig(jobs=1, use_cache=False, journal=journal_path, resume=True))
        records = resumed.run(specs)
        assert resumed.metrics.journal_skips == len(partial)

        reference = SweepRunner(SweepConfig(jobs=1, use_cache=False)).run(specs)
        assert snapshot(records) == snapshot(reference)


class TestFaultedSignalDrain:
    """Satellite of the architectural fault model: a sweep of *faulted*
    runs interrupted mid-flight must drain, journal, and resume to the
    same bits — the fault schedule replays from the spec, not from any
    state the interrupt could have lost."""

    @staticmethod
    def faulted_specs():
        from repro.resilience import FaultEvent, FaultSchedule

        schedule = FaultSchedule((
            FaultEvent(cycle=400, kind="cluster_kill", cluster=3),
            FaultEvent(cycle=700, kind="fu_disable", cluster=2,
                       unit="int_alu"),
            FaultEvent(cycle=1_000, kind="cluster_restore", cluster=3),
        ))
        return [spec_for(p, clusters=16, faults=schedule)
                for p in FOUR_SPECS]

    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_signal_drain_resumes_faulted_sweep(self, tmp_path, signum):
        journal_path = tmp_path / f"sweep-{signum}.jsonl"
        specs = self.faulted_specs()

        def interrupt_after_first(event):
            if event["completed"] == 1:
                os.kill(os.getpid(), signum)

        runner = SweepRunner(SweepConfig(jobs=2, use_cache=False, journal=journal_path), progress=interrupt_after_first)
        with pytest.raises(SweepInterrupted) as excinfo:
            runner.run(specs)
        partial = excinfo.value.completed
        assert 1 <= len(partial) < len(specs)
        assert all(r.ok for r in partial)

        resumed = SweepRunner(SweepConfig(jobs=2, use_cache=False, journal=journal_path, resume=True))
        records = resumed.run(specs)
        assert resumed.metrics.journal_skips == len(partial)

        reference = SweepRunner(SweepConfig(jobs=2, use_cache=False)).run(specs)
        assert snapshot(records) == snapshot(reference)
        for record in records:
            assert record.result.stats.faults_injected == 3


class TestWorkerCrash:
    def test_crash_respawns_pool_and_completes(self, tmp_path):
        """One injected worker crash: the pool is respawned, the suspect is
        re-probed, and the sweep still finishes all-ok."""
        token_dir = tmp_path / "tokens"
        token_dir.mkdir()
        (token_dir / "crash-0").touch()  # budget: exactly one crash
        faults.set_fault_plan(
            faults.FaultPlan(
                crash_profiles=("swim",), crash_token_dir=str(token_dir)
            )
        )
        runner = SweepRunner(SweepConfig(jobs=2, use_cache=False))
        records = runner.run([spec_for(p) for p in ("gzip", "swim", "vpr")])
        assert [r.status for r in records] == ["ok", "ok", "ok"]
        assert runner.metrics.pool_respawns >= 1
        assert list(token_dir.iterdir()) == []  # the token was spent

    def test_repeat_crasher_is_quarantined(self):
        """A spec that kills every worker it touches ends up poisoned, and
        the innocents that shared the pool with it still complete."""
        faults.set_fault_plan(faults.FaultPlan(crash_profiles=("swim",)))
        runner = SweepRunner(SweepConfig(jobs=2, use_cache=False, retries=0, poison_threshold=2))
        records = runner.run([spec_for(p) for p in ("gzip", "swim", "vpr")])
        by_profile = {r.spec.profile: r for r in records}
        assert by_profile["swim"].status == "poisoned"
        assert "quarantined" in by_profile["swim"].error
        assert by_profile["gzip"].ok and by_profile["vpr"].ok
        assert runner.metrics.poisoned == 1
        assert runner.metrics.pool_respawns >= 2

    def test_crash_in_main_process_degrades_to_failure(self):
        """jobs=1 runs in-process; the crash fault must refuse to kill the
        test runner and surface as a structured failure instead."""
        faults.set_fault_plan(faults.FaultPlan(crash_profiles=("gzip",)))
        [record] = SweepRunner(SweepConfig(jobs=1, use_cache=False, retries=0)).run(
            [spec_for("gzip")]
        )
        assert record.status == "failed"
        assert "FaultInjected" in record.error


class TestCacheCorruption:
    def test_corrupt_write_is_detected_and_recomputed(self, tmp_path):
        faults.set_fault_plan(faults.FaultPlan(corrupt_cache_writes=True))
        runner = SweepRunner(SweepConfig(jobs=1, cache_dir=tmp_path))
        [first] = runner.run([spec_for("gzip")])
        assert first.ok
        assert list(tmp_path.glob("*.pkl"))  # a (corrupt) entry was written

        # the checksum rejects the corrupt entry before unpickling: a miss,
        # an eviction, a recompute — never an exception or a wrong result
        [second] = runner.run([spec_for("gzip")])
        assert second.ok and not second.from_cache
        assert second.result.stats.snapshot() == first.result.stats.snapshot()
        assert runner.metrics.cache_hits == 0
        assert runner.metrics.cache_misses == 2

        # with the fault disarmed the rewritten entry round-trips again
        faults.clear_fault_plan()
        runner.run([spec_for("gzip")])
        [hit] = runner.run([spec_for("gzip")])
        assert hit.from_cache


class TestResultPoisoning:
    def test_nan_ipc_is_caught_by_validation(self):
        """A run that *completes* with NaN stats must become a structured
        failure — silent NaN in an exhibit is the worst outcome."""
        faults.set_fault_plan(faults.FaultPlan(nan_profiles=("gzip",)))
        runner = SweepRunner(SweepConfig(jobs=1, use_cache=False, retries=0))
        records = runner.run([spec_for("gzip"), spec_for("swim")])
        assert records[0].status == "failed"
        assert "IPC" in records[0].error
        assert records[1].ok


class TestHang:
    def test_hang_hits_the_timeout(self):
        faults.set_fault_plan(
            faults.FaultPlan(hang_profiles=("gzip",), hang_seconds=5.0)
        )
        runner = SweepRunner(SweepConfig(jobs=1, use_cache=False, retries=0, timeout=0.2))
        [record] = runner.run([spec_for("gzip")])
        assert record.status == "timeout"


class TestFaultPlanTransport:
    def test_json_round_trip(self):
        plan = faults.FaultPlan(
            crash_profiles=("swim", "vpr"),
            crash_token_dir="/tmp/tokens",
            fail_profiles=("gzip",),
            hang_seconds=1.5,
            nan_profiles=("crafty",),
            corrupt_cache_writes=True,
        )
        assert faults.FaultPlan.from_json(plan.to_json()) == plan

    def test_plan_travels_via_environment(self, monkeypatch):
        plan = faults.FaultPlan(fail_profiles=("gzip",))
        faults.set_fault_plan(plan)
        # simulate a worker: no in-process global, only the inherited env
        monkeypatch.setattr(faults, "_ACTIVE", None)
        assert faults.active_plan() == plan

    def test_malformed_env_plan_is_ignored(self, monkeypatch):
        monkeypatch.setattr(faults, "_ACTIVE", None)
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, "{broken json")
        assert faults.active_plan() is None

    def test_unknown_key_raises_naming_it(self):
        with pytest.raises(ValueError, match="'crash_profilez'"):
            faults.FaultPlan.from_json('{"crash_profilez": ["gzip"]}')

    def test_non_object_payload_raises(self):
        with pytest.raises(ValueError, match="JSON object"):
            faults.FaultPlan.from_json('["gzip"]')

    @pytest.mark.parametrize("payload,key", [
        ('{"crash_profiles": "gzip"}', "crash_profiles"),
        ('{"crash_profiles": [1, 2]}', "crash_profiles"),
        ('{"hang_seconds": "soon"}', "hang_seconds"),
        ('{"corrupt_cache_writes": 1}', "corrupt_cache_writes"),
        ('{"scramble_topology": "yes"}', "scramble_topology"),
        ('{"crash_token_dir": 7}', "crash_token_dir"),
        ('{"main_pid": "me"}', "main_pid"),
    ])
    def test_wrong_typed_field_raises_naming_it(self, payload, key):
        with pytest.raises(ValueError, match=repr(key)):
            faults.FaultPlan.from_json(payload)

    def test_wrong_typed_env_plan_degrades_to_no_plan(self, monkeypatch):
        monkeypatch.setattr(faults, "_ACTIVE", None)
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, '{"hang_seconds": "soon"}')
        assert faults.active_plan() is None

    def test_retry_with_backoff_recovers_transient_failure(self, monkeypatch):
        """A fault that fires only on the first attempt models a transient
        failure: the retry (with jittered backoff configured) succeeds."""
        faults.set_fault_plan(faults.FaultPlan(fail_profiles=("gzip",)))
        original = faults.on_execute
        calls = {"n": 0}

        def fails_once(spec):
            calls["n"] += 1
            if calls["n"] == 1:
                original(spec)

        monkeypatch.setattr(faults, "on_execute", fails_once)
        runner = SweepRunner(SweepConfig(jobs=1, use_cache=False, retries=1, retry_backoff=0.001))
        [record] = runner.run([spec_for("gzip")])
        assert record.ok
        assert record.attempts == 2
        assert runner.metrics.retries == 1
