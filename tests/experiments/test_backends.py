"""Backend conformance suite.

One spec matrix, four execution backends, bit-identical records — the
contract that makes the backend a pure mechanism choice.  Plus the
distributed-specific machinery: lane parsing, the wire protocol, worker
death (retry and quarantine), and journal resume across backends.
"""

import json
import os
import signal
import socket
import struct
import threading

import pytest

from repro import faults
from repro.config import default_config
from repro.errors import BackendError
from repro.experiments.backends import (
    BACKEND_KINDS,
    create_backend,
    parse_lanes,
)
from repro.experiments.backends.wire import (
    MAGIC,
    MAX_FRAME,
    WireError,
    pack,
    recv,
    send,
)
from repro.experiments.sweep import (
    ControllerSpec,
    RunSpec,
    SweepConfig,
    SweepRunner,
)

LEN = 2_000

#: 20 specs: five benchmarks x four machine/policy points
MATRIX_BENCHES = ("gzip", "swim", "vpr", "crafty", "parser")
MATRIX_POINTS = (
    ("static-4", ControllerSpec.static(4)),
    ("static-16", ControllerSpec.static(16)),
    ("explore", ControllerSpec.explore()),
    ("finegrain", ControllerSpec.finegrain()),
)


def matrix_specs():
    return [
        RunSpec(
            profile=bench,
            trace_length=LEN,
            config=default_config(16),
            controller=controller,
            label=label,
        )
        for bench in MATRIX_BENCHES
        for label, controller in MATRIX_POINTS
    ]


def spec_for(profile, clusters=4):
    return RunSpec(
        profile=profile,
        trace_length=LEN,
        config=default_config(16),
        controller=ControllerSpec.static(clusters),
        label="backend",
    )


def snapshot(records):
    return [r.result.stats.snapshot() for r in records]


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faults.clear_fault_plan()
    yield
    faults.clear_fault_plan()


@pytest.fixture(autouse=True)
def no_backend_env(monkeypatch):
    monkeypatch.delenv("REPRO_SWEEP_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_LANES", raising=False)


def config_for(kind, **kw):
    """A SweepConfig that forces one concrete backend."""
    if kind == "distributed":
        kw.setdefault("lanes", "local,2")
    elif kind == "process-pool":
        kw.setdefault("jobs", 2)
    elif kind == "batch":
        kw.setdefault("batch_size", 4)
    return SweepConfig(backend=kind, use_cache=kw.pop("use_cache", False), **kw)


class TestConformance:
    """The acceptance matrix: every backend, same bits."""

    @pytest.fixture(scope="class")
    def reference(self):
        """The serial oracle over the full 20-spec matrix."""
        return SweepRunner(config_for("serial")).run(matrix_specs())

    @pytest.mark.parametrize("kind", ["process-pool", "distributed", "batch"])
    def test_matrix_bit_identical_to_serial(self, kind, reference):
        records = SweepRunner(config_for(kind)).run(matrix_specs())
        assert [r.status for r in records] == ["ok"] * len(records)
        assert snapshot(records) == snapshot(reference)
        assert [r.spec.label for r in records] == [
            r.spec.label for r in reference
        ]
        assert [r.events for r in records] == [r.events for r in reference]

    def test_pool_of_batches_bit_identical_to_serial(self, reference):
        """--batch-size composed with --jobs: every worker process runs a
        full lockstep batch; the bits still match the serial oracle."""
        records = SweepRunner(
            config_for("batch", jobs=2, batch_size=3)
        ).run(matrix_specs())
        assert [r.status for r in records] == ["ok"] * len(records)
        assert snapshot(records) == snapshot(reference)
        assert [r.events for r in records] == [r.events for r in reference]

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_cache_keys_identical(self, kind, tmp_path):
        """Identical specs must hash to identical cache entries no matter
        which backend executed them."""
        specs = [spec_for(p) for p in ("gzip", "swim")]
        cache_dir = tmp_path / kind
        SweepRunner(config_for(kind, use_cache=True, cache_dir=cache_dir)).run(
            specs
        )
        names = sorted(p.name for p in cache_dir.glob("*.pkl"))
        assert names == sorted(f"{s.cache_key()}.pkl" for s in specs)

    def test_cross_backend_cache_hits(self, tmp_path):
        """A cache populated by one backend satisfies another."""
        specs = [spec_for("gzip")]
        SweepRunner(config_for("serial", use_cache=True,
                               cache_dir=tmp_path)).run(specs)
        runner = SweepRunner(config_for("process-pool", use_cache=True,
                                        cache_dir=tmp_path))
        [record] = runner.run(specs)
        assert record.from_cache
        assert runner.metrics.cache_hits == 1

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_metrics_report_backend(self, kind):
        runner = SweepRunner(config_for(kind))
        runner.run([spec_for("gzip")])
        info = runner.metrics.snapshot()["backend"]
        assert info["kind"] == kind
        assert info["workers"] >= 1


class TestBackendSelection:
    def test_create_backend_unknown_kind(self):
        with pytest.raises(BackendError, match="unknown execution backend"):
            create_backend("steam-powered")

    def test_env_backend_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "serial")
        assert SweepConfig(jobs=8).resolved_backend() == "serial"

    def test_env_lanes_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_LANES", "local,3")
        config = SweepConfig()
        assert config.resolved_backend() == "distributed"
        assert config.resolved_lanes() == "local,3"

    def test_batch_size_implies_batch_backend(self):
        assert SweepConfig(batch_size=4).resolved_backend() == "batch"
        # explicit lanes still win: distributed workers each run serially
        assert (
            SweepConfig(batch_size=4, lanes="local,2").resolved_backend()
            == "distributed"
        )

    def test_batch_size_validated(self):
        with pytest.raises(Exception):
            SweepConfig(batch_size=0)

    def test_backend_instance_escape_hatch(self):
        backend = create_backend("serial")
        records = SweepRunner(
            SweepConfig(backend=backend, use_cache=False)
        ).run([spec_for("gzip")])
        assert records[0].ok


class TestParseLanes:
    def test_default_is_one_local_lane(self):
        [lane] = parse_lanes(None, default_slots=3)
        assert lane.is_local and lane.slots == 3

    def test_count_spellings(self):
        assert parse_lanes("4", default_slots=1)[0].slots == 4
        assert parse_lanes(4, default_slots=1)[0].slots == 4
        assert parse_lanes("local,2", default_slots=1)[0].slots == 2

    def test_remote_lane(self):
        [lane] = parse_lanes("nodeA:9000,8", default_slots=1)
        assert not lane.is_local
        assert (lane.host, lane.port, lane.slots) == ("nodeA", 9000, 8)

    def test_mixed_lanes(self):
        lanes = parse_lanes("local,2;nodeA:9000,4", default_slots=1)
        assert [lane.slots for lane in lanes] == [2, 4]
        assert lanes[0].is_local and not lanes[1].is_local

    @pytest.mark.parametrize(
        "bad", ["local,0", "local,-1", "host:notaport,2", ":9000,2",
                "host,x"]
    )
    def test_bad_lane_syntax_rejected(self, bad):
        with pytest.raises(BackendError):
            parse_lanes(bad, default_slots=1)


class TestWireProtocol:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            message = {"type": "job", "index": 3, "payload": list(range(50))}
            send(a, message)
            assert recv(b) == message
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        try:
            frame = pack({"type": "job"})
            a.sendall(frame[: len(frame) - 2])
            a.close()
            with pytest.raises(WireError):
                recv(b)
        finally:
            b.close()

    def test_bad_magic_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!4sI", b"BOGU", 4) + b"\x00" * 4)
            with pytest.raises(WireError, match="magic"):
                recv(b)
        finally:
            a.close()
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!4sI", MAGIC, MAX_FRAME + 1))
            with pytest.raises(WireError, match="frame"):
                recv(b)
        finally:
            a.close()
            b.close()


class TestDistributedFaults:
    """Worker death under the distributed backend: blamed correctly,
    survived via respawn + retry, quarantined when unbounded, resumable."""

    def test_single_crash_respawns_and_retries(self, tmp_path):
        token_dir = tmp_path / "tokens"
        token_dir.mkdir()
        (token_dir / "crash-0").touch()  # budget: exactly one worker death
        faults.set_fault_plan(
            faults.FaultPlan(
                crash_profiles=("swim",), crash_token_dir=str(token_dir)
            )
        )
        runner = SweepRunner(config_for("distributed"))
        records = runner.run([spec_for(p) for p in ("gzip", "swim", "vpr")])
        assert [r.status for r in records] == ["ok", "ok", "ok"]
        assert runner.metrics.pool_respawns >= 1
        assert list(token_dir.iterdir()) == []

    def test_repeat_crasher_quarantined_then_resume_completes(self, tmp_path):
        """A spec that kills every worker it touches is poisoned without
        sinking its neighbours; after the fault is disarmed, --resume
        re-attempts only the poisoned spec and converges to all-ok."""
        journal_path = tmp_path / "sweep.jsonl"
        faults.set_fault_plan(faults.FaultPlan(crash_profiles=("swim",)))
        runner = SweepRunner(
            config_for("distributed", retries=0, poison_threshold=2,
                       journal=journal_path)
        )
        records = runner.run([spec_for(p) for p in ("gzip", "swim", "vpr")])
        by_profile = {r.spec.profile: r for r in records}
        assert by_profile["swim"].status == "poisoned"
        assert "quarantined" in by_profile["swim"].error
        assert by_profile["gzip"].ok and by_profile["vpr"].ok
        assert runner.metrics.poisoned == 1

        faults.clear_fault_plan()
        resumed = SweepRunner(
            config_for("distributed", retries=0, poison_threshold=2,
                       journal=journal_path, resume=True)
        )
        records = resumed.run([spec_for(p) for p in ("gzip", "swim", "vpr")])
        assert [r.status for r in records] == ["ok", "ok", "ok"]
        assert resumed.metrics.journal_skips == 2  # the two ok neighbours

        reference = SweepRunner(config_for("serial")).run(
            [spec_for(p) for p in ("gzip", "swim", "vpr")]
        )
        assert snapshot(records)[0] == snapshot(reference)[0]
        assert snapshot(records)[2] == snapshot(reference)[2]

    def test_sigkilled_worker_is_respawned(self):
        """An externally SIGKILL-ed idle worker draws no blame: the lane is
        respawned and the sweep completes all-ok."""
        backend = create_backend("distributed", lanes="local,2", jobs=2)
        runner = SweepRunner(SweepConfig(backend=backend, use_cache=False))
        records = runner.run(
            [spec_for(p) for p in ("gzip", "swim", "vpr", "crafty")],
        )
        # sanity without injection first: now repeat with the kill hook
        assert all(r.ok for r in records)

        backend2 = create_backend("distributed", lanes="local,2", jobs=2)
        killed = threading.Event()

        def kill_one(event):
            if not killed.is_set() and backend2._procs:
                os.kill(backend2._procs[0].pid, signal.SIGKILL)
                killed.set()

        runner2 = SweepRunner(
            SweepConfig(backend=backend2, use_cache=False), progress=kill_one
        )
        records2 = runner2.run(
            [spec_for(p) for p in ("gzip", "swim", "vpr", "crafty")],
        )
        assert killed.is_set()
        assert all(r.ok for r in records2)
        assert snapshot(records2) == snapshot(records)


class TestBackendObservability:
    def test_lifecycle_events_exported(self, tmp_path):
        runner = SweepRunner(config_for("distributed", trace_dir=tmp_path))
        runner.run([spec_for(p) for p in ("gzip", "swim")])
        events = runner.metrics.snapshot()["backend"]["events"]
        kinds = [e["event"] for e in events]
        assert "coordinator_listen" in kinds
        assert kinds.count("worker_spawn") == 2
        assert "worker_connect" in kinds
        assert "lane_assign" in kinds

        trace = json.loads((tmp_path / "sweep_trace.json").read_text())
        names = {e.get("name") for e in trace["traceEvents"]}
        assert "lane_assign" in names

    def test_serial_backend_stats_shape(self):
        runner = SweepRunner(config_for("serial"))
        runner.run([spec_for("gzip")])
        info = runner.metrics.snapshot()["backend"]
        assert info["workers"] == 1
        assert info["executed"] == 1


@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="scaling acceptance needs >= 4 cores",
)
class TestScaling:
    def test_distributed_4x_beats_serial_3x(self):
        """The PR acceptance criterion: a 200-spec synthetic sweep on a
        4-worker localhost DistributedBackend finishes >= 3x faster than
        SerialBackend, bit-identical."""
        import time

        specs = [
            RunSpec(
                profile=MATRIX_BENCHES[i % len(MATRIX_BENCHES)],
                trace_length=1_000,
                config=default_config(16),
                controller=ControllerSpec.static(4),
                label=f"scale-{i}",
            )
            for i in range(200)
        ]
        t0 = time.perf_counter()
        serial = SweepRunner(config_for("serial")).run(specs)
        serial_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        distributed = SweepRunner(
            config_for("distributed", lanes="local,4")
        ).run(specs)
        distributed_s = time.perf_counter() - t0

        assert snapshot(distributed) == snapshot(serial)
        assert distributed_s * 3 <= serial_s, (
            f"distributed {distributed_s:.1f}s vs serial {serial_s:.1f}s"
        )
