"""Reporting helpers."""

import pytest

from repro.experiments.reporting import format_table, geomean, ipc_table


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_ignores_nonpositive(self):
        assert geomean([2.0, 0.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [["x", 1.5], ["longer", 2]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table(["v"], [[1234.5678], [0.123456]])
        assert "1235" in text
        assert "0.123" in text


class TestIpcTable:
    def _results(self):
        return {
            "alpha": {"static-4": 1.0, "static-16": 2.0, "dyn": 2.2},
            "beta": {"static-4": 1.0, "static-16": 0.5, "dyn": 1.1},
        }

    def test_contains_benchmarks_and_geomean(self):
        text = ipc_table(self._results(), ["static-4", "static-16", "dyn"], "T")
        assert "alpha" in text and "beta" in text and "geomean" in text

    def test_improvement_vs_best_static(self):
        text = ipc_table(
            self._results(),
            ["static-4", "static-16", "dyn"],
            "T",
            baseline_schemes=("static-4", "static-16"),
        )
        # geomeans: static-4 = 1.0, static-16 = 1.0, dyn = sqrt(2.42) ~ 1.556
        assert "best static base case" in text
        assert "dyn: +" in text
