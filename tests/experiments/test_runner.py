"""Experiment runner: warmup exclusion, trace caching."""

import pytest

from repro.core import StaticController
from repro.experiments.runner import TraceCache, run_trace, scaled_length
from repro.workloads.profiles import get_profile


class TestRunTrace:
    def test_result_fields(self, parallel_trace, config16):
        r = run_trace(parallel_trace, config16, StaticController(4),
                      warmup=1000, label="static-4")
        assert r.label == "static-4"
        assert r.ipc > 0
        # warmup stops on a commit-width boundary, so allow slack
        assert len(parallel_trace) - 1000 - 16 <= r.committed <= len(parallel_trace) - 1000
        assert r.cycles > 0
        assert r.avg_active_clusters <= 4.01

    def test_warmup_excluded_from_measurement(self, parallel_trace, config16):
        cold = run_trace(parallel_trace, config16, warmup=0)
        warm = run_trace(parallel_trace, config16, warmup=2000)
        # startup transients (cold caches, pipe fill) depress the cold IPC
        assert warm.ipc >= cold.ipc

    def test_warmup_clamped_for_short_traces(self, parallel_trace, config16):
        r = run_trace(parallel_trace, config16, warmup=10 ** 9)
        assert r.committed >= 900  # still measured something

    def test_speedup_over(self, parallel_trace, config16):
        a = run_trace(parallel_trace, config16, StaticController(16), warmup=500)
        b = run_trace(parallel_trace, config16, StaticController(2), warmup=500)
        assert a.speedup_over(b) == pytest.approx(a.ipc / b.ipc)


class TestTraceCache:
    def test_same_object_returned(self):
        cache = TraceCache(length=2000, seed=3)
        p = get_profile("gzip")
        assert cache.get(p) is cache.get(p)

    def test_distinct_profiles_distinct_traces(self):
        cache = TraceCache(length=2000, seed=3)
        a = cache.get(get_profile("gzip"))
        b = cache.get(get_profile("swim"))
        assert a is not b
        assert a.name == "gzip" and b.name == "swim"

    def test_scaled_length_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "2")
        assert scaled_length(1000) == 2000
        monkeypatch.setenv("REPRO_TRACE_SCALE", "bogus")
        assert scaled_length(1000) == 1000
