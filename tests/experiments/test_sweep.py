"""SweepRunner: parallel fan-out, result caching, failure handling.

The hard requirement under test: a parallel sweep is *bit-identical* to
the serial loop it replaced — same SimStats, same IPC, same
reconfiguration event sequence — and the cache returns exactly what the
simulation would have produced.
"""

import dataclasses
import pickle
import time

import pytest

from repro.config import decentralized_config, default_config
from repro.core import ExploreConfig, NoExploreConfig, StaticController
from repro.experiments.runner import TraceCache, run_trace
from repro.experiments.sweep import (
    ControllerSpec,
    ResultCache,
    RunRecord,
    RunSpec,
    SweepConfig,
    SweepRunner,
    default_jobs,
    execute_spec,
    require_ok,
)
from repro.stats import SimStats

LEN = 3_000


def spec_for(profile="gzip", scheme=None, length=LEN, **kw):
    return RunSpec(
        profile=profile,
        trace_length=length,
        config=default_config(16),
        controller=scheme or ControllerSpec.static(4),
        label="test",
        **kw,
    )


class TestControllerSpec:
    def test_every_kind_builds(self):
        specs = [
            ControllerSpec.none(),
            ControllerSpec.static(4),
            ControllerSpec.explore(),
            ControllerSpec.no_explore(),
            ControllerSpec.finegrain(),
            ControllerSpec.subroutine(),
        ]
        built = [s.build() for s in specs]
        assert built[0] is None
        assert isinstance(built[1], StaticController)
        # a spec is a factory: every build is a fresh instance
        assert specs[2].build() is not specs[2].build()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ControllerSpec("banana")

    def test_static_needs_clusters(self):
        with pytest.raises(ValueError):
            ControllerSpec("static")

    def test_spec_is_hashable_and_picklable(self):
        spec = ControllerSpec.explore(ExploreConfig.scaled())
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))


class TestCacheKey:
    def test_stable_across_processes(self):
        a = spec_for()
        b = spec_for()
        assert a.cache_key() == b.cache_key()

    @pytest.mark.parametrize(
        "change",
        [
            {"profile": "swim"},
            {"seed": 8},
            {"length": LEN + 1},
            {"warmup": 123},
            {"scheme": ControllerSpec.static(8)},
            {"scheme": ControllerSpec.explore()},
            {"steering": ("mod-n", 3)},
            {"record_granularity": 500},
        ],
    )
    def test_any_input_changes_the_key(self, change):
        assert spec_for().cache_key() != spec_for(**change).cache_key()

    def test_config_changes_the_key(self):
        base = spec_for()
        other = dataclasses.replace(base, config=decentralized_config(16))
        assert base.cache_key() != other.cache_key()

    def test_label_does_not_change_the_key(self):
        base = spec_for()
        relabelled = dataclasses.replace(base, label="other-exhibit")
        assert base.cache_key() == relabelled.cache_key()


class TestSerialRunner:
    def test_results_in_spec_order(self):
        specs = [
            spec_for("swim", ControllerSpec.static(16)),
            spec_for("gzip", ControllerSpec.static(4)),
        ]
        records = SweepRunner(SweepConfig(jobs=1, use_cache=False)).run(specs)
        assert [r.spec.profile for r in records] == ["swim", "gzip"]
        assert all(r.ok and not r.from_cache for r in records)

    def test_matches_direct_run_trace(self):
        """SweepRunner(SweepConfig(jobs=1)) == the plain serial path, bit for bit."""
        from repro.workloads.profiles import get_profile

        cache = TraceCache(LEN, seed=7)

        direct = run_trace(
            cache.get(get_profile("gzip")),
            default_config(16),
            StaticController(4),
            label="test",
        )
        [record] = SweepRunner(SweepConfig(jobs=1, use_cache=False)).run([spec_for("gzip")])
        assert record.result.ipc == direct.ipc
        assert record.result.committed == direct.committed
        assert record.result.stats.snapshot() == direct.stats.snapshot()

    def test_metrics_populated(self):
        runner = SweepRunner(SweepConfig(jobs=1, use_cache=False))
        runner.run([spec_for(), spec_for("swim")])
        m = runner.metrics
        assert m.submitted == m.completed == 2
        assert m.failed == 0 and m.cache_hits == 0
        assert len(m.latencies) == 2
        assert m.p95_seconds >= m.p50_seconds > 0
        assert 0 < m.busy_seconds <= m.wall_seconds  # jobs=1: no overlap
        assert m.snapshot()["jobs"] == 1

    def test_progress_hook(self):
        events = []
        runner = SweepRunner(SweepConfig(jobs=1, use_cache=False), progress=events.append)
        runner.run([spec_for()])
        assert len(events) == 1
        assert events[0]["status"] == "ok"
        assert events[0]["completed"] == 1 and events[0]["total"] == 1


class TestFailureHandling:
    def test_structured_failure_instead_of_crash(self):
        bad = spec_for(profile="not-a-benchmark")
        [record] = SweepRunner(SweepConfig(jobs=1, use_cache=False, retries=0)).run([bad])
        assert record.status == "failed"
        assert "not-a-benchmark" in record.error
        assert record.result is None

    def test_retry_count(self):
        runner = SweepRunner(SweepConfig(jobs=1, use_cache=False, retries=2))
        [record] = runner.run([spec_for(profile="not-a-benchmark")])
        assert record.attempts == 3
        assert runner.metrics.retries == 2
        assert runner.metrics.failed == 1

    def test_failures_do_not_stop_the_sweep(self):
        records = SweepRunner(SweepConfig(jobs=1, use_cache=False, retries=0)).run(
            [spec_for(), spec_for(profile="not-a-benchmark"), spec_for("swim")]
        )
        assert [r.status for r in records] == ["ok", "failed", "ok"]

    def test_require_ok_raises_with_details(self):
        records = SweepRunner(SweepConfig(jobs=1, use_cache=False, retries=0)).run(
            [spec_for(profile="not-a-benchmark")]
        )
        with pytest.raises(RuntimeError, match="not-a-benchmark"):
            require_ok(records)

    def test_timeout_is_a_structured_record(self):
        # a 200k-instruction simulation cannot finish in 50ms
        slow = spec_for(length=200_000)
        runner = SweepRunner(SweepConfig(jobs=1, use_cache=False, retries=0, timeout=0.05))
        [record] = runner.run([slow])
        assert record.status == "timeout"
        assert "timeout" in record.error
        assert runner.metrics.timeouts == 1

    def test_execute_spec_never_raises(self):
        record = execute_spec(spec_for(profile="nope"))
        assert isinstance(record, RunRecord) and record.status == "failed"


class TestTimeoutWithoutSigalrm:
    def test_non_main_thread_runs_unbounded_instead_of_crashing(self):
        """SIGALRM cannot be armed outside the main thread (or off Unix);
        execute_spec must fall back to an unbounded run, not crash —
        documented platform caveat in docs/SWEEPS.md."""
        import threading

        out = {}

        def worker():
            out["record"] = execute_spec(spec_for(), timeout=0.0001)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=120)
        assert not thread.is_alive()
        # the timeout was far exceeded, but with no alarm available the
        # run completes ok rather than raising or killing the thread
        assert out["record"].ok


class TestResultCache:
    def test_hit_returns_identical_stats(self, tmp_path):
        runner = SweepRunner(SweepConfig(jobs=1, cache_dir=tmp_path))
        [first] = runner.run([spec_for()])
        [second] = runner.run([spec_for()])
        assert not first.from_cache and second.from_cache
        assert second.result.stats.snapshot() == first.result.stats.snapshot()
        assert second.events == first.events
        assert runner.metrics.cache_hits == 1

    def test_hit_rewrites_label_for_the_requesting_exhibit(self, tmp_path):
        runner = SweepRunner(SweepConfig(jobs=1, cache_dir=tmp_path))
        runner.run([spec_for()])
        base = spec_for()
        [hit] = runner.run([dataclasses.replace(base, label="figureX")])
        assert hit.from_cache and hit.result.label == "figureX"

    def test_corrupted_entry_is_evicted_and_recomputed(self, tmp_path):
        runner = SweepRunner(SweepConfig(jobs=1, cache_dir=tmp_path))
        [first] = runner.run([spec_for()])
        path = tmp_path / f"{spec_for().cache_key()}.pkl"
        assert path.exists()
        path.write_bytes(b"this is not a pickle")
        [again] = runner.run([spec_for()])
        assert again.ok and not again.from_cache
        assert again.result.ipc == first.result.ipc
        # the recomputed result was re-cached over the corrupt entry
        [third] = runner.run([spec_for()])
        assert third.from_cache

    def test_bit_flip_fails_checksum_before_unpickling(self, tmp_path):
        """A single flipped byte in the stored record defeats the SHA-256
        and the entry is evicted — the unpickler never sees rotten bytes."""
        runner = SweepRunner(SweepConfig(jobs=1, cache_dir=tmp_path))
        runner.run([spec_for()])
        path = tmp_path / f"{spec_for().cache_key()}.pkl"
        payload = pickle.loads(path.read_bytes())
        assert payload["schema"] == 2 and "sha256" in payload
        rotten = bytearray(payload["record"])
        rotten[len(rotten) // 2] ^= 0x01
        payload["record"] = bytes(rotten)
        path.write_bytes(pickle.dumps(payload))
        assert ResultCache(tmp_path).get(spec_for()) is None
        assert not path.exists()  # evicted
        [again] = runner.run([spec_for()])
        assert again.ok and not again.from_cache  # recomputed, no exception

    def test_hit_is_an_independent_copy(self, tmp_path):
        """get() must hand out a copy: mutating one exhibit's hit cannot
        leak into another exhibit sharing the same cache entry."""
        cache = ResultCache(tmp_path)
        runner = SweepRunner(SweepConfig(jobs=1, cache_dir=tmp_path))
        runner.run([spec_for()])
        first = cache.get(spec_for())
        first.result.ipc = -123.0  # one consumer misbehaves
        object.__setattr__(first.spec, "profile", "clobbered")
        second = cache.get(spec_for())
        assert second.result.ipc != -123.0
        assert second.spec.profile == "gzip"

    def test_wrong_object_in_entry_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = spec_for()
        path = tmp_path / f"{spec.cache_key()}.pkl"
        path.write_bytes(pickle.dumps({"schema": 999, "key": "x", "record": None}))
        assert cache.get(spec) is None
        assert not path.exists()

    def test_failed_runs_are_not_cached(self, tmp_path):
        runner = SweepRunner(SweepConfig(jobs=1, cache_dir=tmp_path, retries=0))
        runner.run([spec_for(profile="not-a-benchmark")])
        assert list(tmp_path.iterdir()) == []

    def test_no_cache_runner_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = SweepRunner(SweepConfig(jobs=1, use_cache=False))
        runner.run([spec_for()])
        assert list(tmp_path.iterdir()) == []

    def test_cache_dir_env_respected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sub"))
        runner = SweepRunner(SweepConfig(jobs=1))
        runner.run([spec_for()])
        assert list((tmp_path / "sub").glob("*.pkl"))


class TestDeterminism:
    """Same seed => identical results: serial, jobs=1, and jobs=4."""

    SPECS = None

    @classmethod
    def specs(cls):
        if cls.SPECS is None:
            schemes = {
                "static-4": ControllerSpec.static(4),
                "explore": ControllerSpec.explore(ExploreConfig.scaled()),
                "no-explore": ControllerSpec.no_explore(NoExploreConfig.scaled()),
            }
            cls.SPECS = [
                dataclasses.replace(spec_for(profile), controller=ctl, label=name)
                for profile in ("gzip", "swim")
                for name, ctl in schemes.items()
            ]
        return cls.SPECS

    @pytest.fixture(scope="class")
    def serial_records(self):
        return SweepRunner(SweepConfig(jobs=1, use_cache=False)).run(self.specs())

    def test_parallel_matches_serial(self, serial_records):
        parallel = SweepRunner(SweepConfig(jobs=4, use_cache=False)).run(self.specs())
        for s, p in zip(serial_records, parallel):
            assert p.spec == s.spec
            assert p.result.committed == s.result.committed
            assert p.result.ipc == s.result.ipc
            assert p.result.cycles == s.result.cycles
            assert p.result.stats.reconfigurations == s.result.stats.reconfigurations
            # the full reconfiguration event sequence, cycle for cycle
            assert p.events == s.events

    def test_serial_repeat_is_identical(self, serial_records):
        again = SweepRunner(SweepConfig(jobs=1, use_cache=False)).run(self.specs())
        for a, b in zip(serial_records, again):
            assert a.result.stats.snapshot() == b.result.stats.snapshot()
            assert a.events == b.events


class TestMergeableStats:
    def test_sweep_aggregate_equals_counter_sums(self):
        records = SweepRunner(SweepConfig(jobs=1, use_cache=False)).run(
            [spec_for("gzip"), spec_for("swim")]
        )
        total = SimStats.merged(r.result.stats for r in records)
        assert total.committed == sum(r.result.stats.committed for r in records)
        assert total.cycles == sum(r.result.stats.cycles for r in records)
        assert total.ipc == pytest.approx(total.committed / total.cycles)


class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "bogus")
        assert default_jobs() >= 1

    def test_floor_of_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() >= 1


class TestSweepConfig:
    def test_legacy_kwargs_warn_and_match(self):
        """The kwarg-pile spelling still works for one release behind a
        DeprecationWarning and produces the same records as SweepConfig."""
        with pytest.warns(DeprecationWarning, match="SweepConfig"):
            legacy = SweepRunner(jobs=1, use_cache=False)
        modern = SweepRunner(SweepConfig(jobs=1, use_cache=False))
        specs = [spec_for("gzip")]
        [a] = legacy.run(specs)
        [b] = modern.run(specs)
        assert a.result.stats.snapshot() == b.result.stats.snapshot()

    def test_legacy_positional_jobs(self):
        with pytest.warns(DeprecationWarning, match="SweepConfig"):
            runner = SweepRunner(2)
        assert runner.config.jobs == 2

    def test_unknown_legacy_kwarg_rejected(self):
        with pytest.raises(TypeError, match="unexpected arguments"):
            SweepRunner(SweepConfig(jobs=1), bogus=True)

    def test_config_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="jobs"):
            SweepConfig(jobs=-1)
        with pytest.raises(ConfigError, match="backend"):
            SweepConfig(backend="steam-powered")
        with pytest.raises(ConfigError, match="retries"):
            SweepConfig(retries=-1)

    def test_resolved_backend_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_LANES", raising=False)
        assert SweepConfig(jobs=1).resolved_backend() == "serial"
        assert SweepConfig(jobs=4).resolved_backend() == "process-pool"
        assert SweepConfig(lanes="local,2").resolved_backend() == "distributed"
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "serial")
        assert SweepConfig(jobs=4).resolved_backend() == "serial"
