"""Reconfiguration timeline recorder."""

from repro import (
    DistantILPController,
    NoExploreConfig,
    StaticController,
)
from repro.experiments.timeline import Reconfiguration, TimelineRecorder, _glyph
from repro.pipeline.processor import ClusteredProcessor


class TestGlyphs:
    def test_known_counts(self):
        assert _glyph(1) == "."
        assert _glyph(16) == "@"

    def test_nearest_for_odd_counts(self):
        assert _glyph(3) in (":", "|")
        assert _glyph(12) in ("#", "@")


class TestRecorder:
    def test_records_static_controller_initial_change(self, parallel_trace, config16):
        rec = TimelineRecorder(StaticController(4))
        proc = ClusteredProcessor(parallel_trace, config16, rec)
        proc.run()
        assert len(rec.events) == 1
        assert rec.events[0].clusters == 4
        assert proc.stats.committed == len(parallel_trace)

    def test_records_dynamic_events_in_order(self, phased_trace, config16):
        rec = TimelineRecorder(
            DistantILPController(NoExploreConfig.scaled(interval_length=500))
        )
        proc = ClusteredProcessor(phased_trace, config16, rec)
        proc.run()
        assert rec.events, "dynamic controller should reconfigure"
        commits = [e.committed for e in rec.events]
        assert commits == sorted(commits)
        # events reflect actual changes only
        clusters = [e.clusters for e in rec.events]
        assert all(a != b for a, b in zip(clusters, clusters[1:])) or len(clusters) == 1

    def test_forwards_dispatch_flag(self):
        from repro.core import FineGrainController

        rec = TimelineRecorder(FineGrainController())
        assert rec.needs_dispatch_events

    def test_render_strip(self, phased_trace, config16):
        rec = TimelineRecorder(
            DistantILPController(NoExploreConfig.scaled(interval_length=500))
        )
        proc = ClusteredProcessor(phased_trace, config16, rec)
        proc.run()
        strip = rec.render(len(phased_trace), width=32)
        assert "clusters" in strip
        body = strip.split("  (")[0]
        assert len(body) == 32
        assert set(body) <= {".", ":", "|", "#", "@"}

    def test_render_empty(self):
        rec = TimelineRecorder(StaticController(4))
        assert rec.render(0) == ""
