"""SweepJournal: durable appends, corruption tolerance, resume filtering."""

import base64
import json
import pickle

import pytest

from repro.config import default_config
from repro.experiments.journal import JOURNAL_SCHEMA_VERSION, SweepJournal
from repro.experiments.sweep import (
    ControllerSpec,
    RunRecord,
    RunSpec,
    SweepConfig,
    SweepRunner,
)

LEN = 3_000


def spec_for(profile="gzip", clusters=4, **kw):
    return RunSpec(
        profile=profile,
        trace_length=LEN,
        config=default_config(16),
        controller=ControllerSpec.static(clusters),
        label="journal-test",
        **kw,
    )


@pytest.fixture()
def completed_records():
    """Two real completed records (one per profile), computed once."""
    runner = SweepRunner(SweepConfig(jobs=1, use_cache=False))
    return runner.run([spec_for("gzip"), spec_for("swim")])


class TestRoundTrip:
    def test_append_then_load(self, tmp_path, completed_records):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        for record in completed_records:
            journal.append(record)
        loaded = journal.load()
        assert len(loaded) == 2
        for record in completed_records:
            back = loaded[record.spec.cache_key()]
            assert back.ok
            assert back.result.stats.snapshot() == record.result.stats.snapshot()
        assert journal.corrupt_lines == 0

    def test_missing_file_loads_empty(self, tmp_path):
        journal = SweepJournal(tmp_path / "nope.jsonl")
        assert journal.load() == {}

    def test_later_line_wins_for_same_key(self, tmp_path, completed_records):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        first = completed_records[0]
        failed = RunRecord(spec=first.spec, status="failed", error="transient")
        journal.append(failed)
        journal.append(first)  # later success supersedes the failure
        loaded = journal.load()
        assert loaded[first.spec.cache_key()].ok

    def test_load_ok_excludes_failures(self, tmp_path, completed_records):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.append(completed_records[0])
        bad = RunRecord(spec=spec_for("vpr"), status="timeout", error="slow")
        journal.append(bad)
        assert len(journal.load()) == 2
        ok = journal.load_ok()
        assert len(ok) == 1
        assert completed_records[0].spec.cache_key() in ok


class TestCorruptionTolerance:
    def _journal_with_two(self, tmp_path, records):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.append(records[0])
        journal.append(records[1])
        return journal

    def test_truncated_final_line_skipped(self, tmp_path, completed_records):
        """A sweep killed mid-append leaves a torn last line — never fatal."""
        journal = self._journal_with_two(tmp_path, completed_records)
        text = journal.path.read_text()
        journal.path.write_text(text + text.splitlines()[0][: len(text) // 8])
        loaded = journal.load()
        assert len(loaded) == 2
        assert journal.corrupt_lines == 1

    def test_garbage_middle_line_skipped(self, tmp_path, completed_records):
        journal = self._journal_with_two(tmp_path, completed_records)
        lines = journal.path.read_text().splitlines()
        lines.insert(1, "{not json at all")
        journal.path.write_text("\n".join(lines) + "\n")
        assert len(journal.load()) == 2
        assert journal.corrupt_lines == 1

    def test_checksum_mismatch_skipped(self, tmp_path, completed_records):
        journal = self._journal_with_two(tmp_path, completed_records)
        lines = journal.path.read_text().splitlines()
        entry = json.loads(lines[0])
        payload = bytearray(base64.b64decode(entry["payload"]))
        payload[len(payload) // 2] ^= 0xFF  # one flipped byte, sha intact
        entry["payload"] = base64.b64encode(bytes(payload)).decode()
        lines[0] = json.dumps(entry)
        journal.path.write_text("\n".join(lines) + "\n")
        loaded = journal.load()
        assert len(loaded) == 1  # the tampered record is rejected up front
        assert journal.corrupt_lines == 1

    def test_wrong_object_payload_skipped(self, tmp_path, completed_records):
        journal = self._journal_with_two(tmp_path, completed_records)
        payload = pickle.dumps({"not": "a RunRecord"})
        import hashlib

        line = json.dumps(
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "key": "bogus",
                "status": "ok",
                "sha256": hashlib.sha256(payload).hexdigest(),
                "payload": base64.b64encode(payload).decode(),
            }
        )
        with open(journal.path, "a") as fh:
            fh.write(line + "\n")
        assert len(journal.load()) == 2
        assert journal.corrupt_lines == 1

    def test_schema_mismatch_skipped(self, tmp_path, completed_records):
        journal = self._journal_with_two(tmp_path, completed_records)
        lines = journal.path.read_text().splitlines()
        entry = json.loads(lines[0])
        entry["schema"] = 999
        lines[0] = json.dumps(entry)
        journal.path.write_text("\n".join(lines) + "\n")
        assert len(journal.load()) == 1


class TestRunnerIntegration:
    def test_runner_journals_every_final_record(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        runner = SweepRunner(SweepConfig(jobs=1, use_cache=False, retries=0, journal=journal_path))
        runner.run([spec_for("gzip"), spec_for(profile="not-a-benchmark")])
        journal = SweepJournal(journal_path)
        loaded = journal.load()
        assert len(loaded) == 2
        statuses = sorted(r.status for r in loaded.values())
        assert statuses == ["failed", "ok"]

    def test_resume_skips_completed_work(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        specs = [spec_for("gzip"), spec_for("swim"), spec_for("vpr")]
        # first attempt completes only the first two specs
        first = SweepRunner(SweepConfig(jobs=1, use_cache=False, journal=journal_path))
        first.run(specs[:2])
        resumed = SweepRunner(SweepConfig(jobs=1, use_cache=False, journal=journal_path, resume=True))
        records = resumed.run(specs)
        assert [r.status for r in records] == ["ok", "ok", "ok"]
        assert [r.from_journal for r in records] == [True, True, False]
        assert resumed.metrics.journal_skips == 2
        # the third run was appended, so a further resume skips all three
        third = SweepRunner(SweepConfig(jobs=1, use_cache=False, journal=journal_path, resume=True))
        third.run(specs)
        assert third.metrics.journal_skips == 3

    def test_resume_reattempts_journaled_failures(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        spec = spec_for("gzip")
        journal = SweepJournal(journal_path)
        journal.append(RunRecord(spec=spec, status="failed", error="transient"))
        runner = SweepRunner(SweepConfig(jobs=1, use_cache=False, journal=journal_path, resume=True))
        [record] = runner.run([spec])
        assert record.ok and not record.from_journal
        assert runner.metrics.journal_skips == 0

    def test_journal_hit_is_relabelled_copy(self, tmp_path):
        import dataclasses

        journal_path = tmp_path / "sweep.jsonl"
        base = spec_for("gzip")
        SweepRunner(SweepConfig(jobs=1, use_cache=False, journal=journal_path)).run([base])
        other = dataclasses.replace(base, label="another-exhibit")
        runner = SweepRunner(SweepConfig(jobs=1, use_cache=False, journal=journal_path, resume=True))
        [record] = runner.run([other])
        assert record.from_journal
        assert record.result.label == "another-exhibit"

    def test_unwritable_journal_degrades_not_fatal(self, tmp_path):
        # parent "directory" is a regular file, so every append fails
        # (chmod tricks don't work here: the test suite may run as root)
        (tmp_path / "blocker").write_text("")
        target = tmp_path / "blocker" / "sweep.jsonl"
        runner = SweepRunner(SweepConfig(jobs=1, use_cache=False, journal=target))
        [record] = runner.run([spec_for("gzip")])
        assert record.ok
        assert runner.metrics.journal_errors == 1
