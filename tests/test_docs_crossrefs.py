"""Docs lint: retired spellings and stale cross-references.

The executable-docs test proves ```python blocks still *run*; this file
covers what execution cannot: deprecated-but-still-working spellings
(the one-release shims keep them alive precisely so old user code warns
instead of breaking — the docs must never teach them), retired call
shapes inside non-executed fences, and `docs/*.md` cross-references to
files that no longer (or don't yet) exist.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])
EXAMPLE_FILES = sorted((REPO / "examples").glob("*.py"))

#: retired spellings: (name, regex, what replaced it).  These live behind
#: DeprecationWarning shims or were removed outright (L202); docs and
#: examples must use only the current vocabulary.
RETIRED = [
    (
        "SweepRunner legacy kwargs",
        re.compile(
            r"SweepRunner\(\s*(jobs|use_cache|cache_dir|timeout|retries"
            r"|retry_backoff|poison_threshold|journal|resume|trace_dir"
            r"|lanes|backend|batch_size)\s*="
        ),
        "SweepRunner(SweepConfig(...))",
    ),
    (
        "positional simulate(trace, config)",
        re.compile(
            r"\bsimulate\(\s*[\w.\"']+\s*,\s*(default_config|grid_config"
            r"|torus_config|ring_of_rings_config|decentralized_config"
            r"|monolithic_config)\b"
        ),
        "simulate(workload, topology=..., processor=...)",
    ),
    (
        "positional run_trace controller-plus-warmup",
        # four or more positional args: warmup and later are keyword-only
        re.compile(r"\brun_trace\((?:\s*[\w.()\"']+\s*,){3}\s*[\w.()\"']+"),
        "run_trace(trace, config, controller, warmup=...)",
    ),
]

#: docs/<NAME>.md references must resolve against the real docs tree
_DOC_REF = re.compile(r"\bdocs/([A-Z_]+\.md)\b")


def _fenced_blocks(path):
    """Yield (lineno, text) for every fenced block, whatever the tag —
    retired spellings are banned even in illustrative ```text fences."""
    lines = path.read_text(encoding="utf-8").splitlines()
    start = None
    block = []
    for number, line in enumerate(lines, start=1):
        if start is None:
            if line.lstrip().startswith("```"):
                start = number + 1
                block = []
        elif line.strip() == "```":
            yield start, "\n".join(block)
            start = None
        else:
            block.append(line)


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=[str(p.relative_to(REPO)) for p in DOC_FILES]
)
def test_doc_code_blocks_use_current_vocabulary(path):
    offenders = []
    for lineno, block in _fenced_blocks(path):
        for name, pattern, instead in RETIRED:
            if pattern.search(block):
                offenders.append(
                    f"{path.relative_to(REPO)}:{lineno}: {name} "
                    f"(use {instead})"
                )
    assert not offenders, "\n".join(offenders)


@pytest.mark.parametrize(
    "path",
    EXAMPLE_FILES,
    ids=[str(p.relative_to(REPO)) for p in EXAMPLE_FILES],
)
def test_examples_use_current_vocabulary(path):
    source = path.read_text(encoding="utf-8")
    offenders = [
        f"{path.relative_to(REPO)}: {name} (use {instead})"
        for name, pattern, instead in RETIRED
        if pattern.search(source)
    ]
    assert not offenders, "\n".join(offenders)


@pytest.mark.parametrize(
    "path",
    DOC_FILES + EXAMPLE_FILES,
    ids=[str(p.relative_to(REPO)) for p in DOC_FILES + EXAMPLE_FILES],
)
def test_doc_cross_references_resolve(path):
    text = path.read_text(encoding="utf-8")
    missing = sorted(
        {
            f"docs/{name}"
            for name in _DOC_REF.findall(text)
            if not (REPO / "docs" / name).exists()
        }
    )
    assert not missing, (
        f"{path.relative_to(REPO)} references docs that do not exist: "
        f"{', '.join(missing)}"
    )


def test_lint_catches_retired_spellings():
    """The lint itself must fire: each retired pattern matches its own
    canonical bad example (a regression here means the docs could rot
    silently)."""
    bad = {
        "SweepRunner legacy kwargs": "runner = SweepRunner(jobs=4, use_cache=False)",
        "positional simulate(trace, config)": "simulate(trace, default_config(16))",
        "positional run_trace controller-plus-warmup": (
            "run_trace(trace, config, controller, 4000)"
        ),
    }
    for name, pattern, _ in RETIRED:
        assert pattern.search(bad[name]), f"{name} no longer matches"
