"""Shared fixtures: small cached traces and processor configurations."""

from __future__ import annotations

import os

# Runtime invariant checking (repro.pipeline.invariants) is on for the
# whole test suite — including sweep worker processes, which inherit the
# environment.  Checks are read-only, so results are identical either way.
os.environ.setdefault("REPRO_CHECK_INVARIANTS", "1")

import pytest

from repro import default_config, generate_trace, get_profile
from repro.workloads.blocks import PhaseParams
from repro.workloads.generator import Profile


@pytest.fixture(scope="session")
def parallel_phase() -> PhaseParams:
    """A distant-ILP-rich phase (independent iterations, wide trees)."""
    return PhaseParams(
        name="parallel",
        body_size=48,
        frac_load=0.18,
        frac_store=0.10,
        cross_iter_dep=0.0,
        chain_prob=0.20,
        inner_branches=1,
        random_branch_frac=0.01,
        biased_taken_prob=0.985,
        loop_taken_prob=0.99,
        mem_pattern="strided",
        working_set=16 * 1024,
        stride=8,
    )


@pytest.fixture(scope="session")
def serial_phase() -> PhaseParams:
    """A serial-recurrence phase (little distant ILP)."""
    return PhaseParams(
        name="serial",
        body_size=14,
        frac_load=0.26,
        frac_store=0.08,
        cross_iter_dep=0.7,
        chain_prob=0.7,
        inner_branches=2,
        random_branch_frac=0.10,
        biased_taken_prob=0.94,
        mem_pattern="random",
        working_set=32 * 1024,
    )


@pytest.fixture(scope="session")
def parallel_trace(parallel_phase):
    return generate_trace(
        Profile(name="parallel", phases=(parallel_phase,), schedule="steady"),
        6_000,
        seed=11,
    )


@pytest.fixture(scope="session")
def serial_trace(serial_phase):
    return generate_trace(
        Profile(name="serial", phases=(serial_phase,), schedule="steady"),
        6_000,
        seed=11,
    )


@pytest.fixture(scope="session")
def phased_trace(parallel_phase, serial_phase):
    """Alternating parallel/serial phases — what the controllers must track."""
    return generate_trace(
        Profile(
            name="phased",
            phases=(parallel_phase, serial_phase),
            schedule="alternate",
            segment_length=3_000,
        ),
        12_000,
        seed=11,
    )


@pytest.fixture(scope="session")
def gzip_trace():
    return generate_trace(get_profile("gzip"), 8_000, seed=5)


@pytest.fixture
def config16():
    return default_config(16)


@pytest.fixture
def config4():
    return default_config(4)
