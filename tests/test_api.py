"""The stable facade (`repro.api`) and the entry-point deprecation shims."""

import dataclasses

import pytest

from repro.api import SimResult, SimSpec, simulate, sweep
from repro.core import StaticController
from repro.errors import ConfigError
from repro.experiments.runner import run_trace
from repro.experiments.sweep import ControllerSpec
from repro.pipeline.processor import ClusteredProcessor
from repro.pipeline.processor import simulate as engine_simulate


class TestSimulateFacade:
    def test_profile_name_workload(self):
        result = simulate("gzip", trace_length=3_000, reconfig_policy="static-4")
        assert isinstance(result, SimResult)
        assert 0.0 < result.ipc <= 16.0
        assert result.stats.committed == result.committed

    def test_trace_workload(self, parallel_trace):
        result = simulate(parallel_trace)
        assert result.committed == len(parallel_trace)

    def test_simspec_workload(self, parallel_trace):
        spec = SimSpec(workload=parallel_trace, reconfig_policy="static-8")
        result = simulate(spec)
        assert result.committed == len(parallel_trace)

    def test_kwargs_override_simspec(self, parallel_trace):
        spec = SimSpec(workload=parallel_trace, label="original")
        result = simulate(spec, label="override")
        assert result.label == "override"

    def test_topology_vocabulary(self, parallel_trace):
        decentralized = simulate(parallel_trace, topology="decentralized")
        assert decentralized.stats.store_broadcasts > 0

    def test_unknown_topology_rejected(self, parallel_trace):
        with pytest.raises(ConfigError, match="unknown topology"):
            simulate(parallel_trace, topology="hexgrid")

    def test_unknown_policy_rejected(self, parallel_trace):
        with pytest.raises(ConfigError, match="unknown reconfig_policy"):
            simulate(parallel_trace, reconfig_policy="adaptive")

    def test_controller_spec_policy(self, parallel_trace):
        result = simulate(
            parallel_trace, reconfig_policy=ControllerSpec.static(4)
        )
        assert result.avg_active_clusters <= 4.01

    def test_matches_engine_run(self, parallel_trace, config16):
        """The facade is a veneer: same trace, same machine, same stats."""
        facade = simulate(parallel_trace, processor=config16)
        engine = engine_simulate(parallel_trace, config16)
        assert facade.stats == engine


class TestSweepFacade:
    def test_simspec_matrix(self, tmp_path):
        specs = [
            SimSpec(workload="gzip", trace_length=2_000,
                    reconfig_policy=f"static-{n}")
            for n in (4, 16)
        ]
        result = sweep(specs, jobs=1, cache_dir=tmp_path)
        assert result.ok
        assert len(result) == 2
        assert all(r is not None for r in result.results)

    def test_trace_workload_rejected(self, parallel_trace):
        with pytest.raises(ConfigError, match="profile-name workloads"):
            sweep([SimSpec(workload=parallel_trace)])

    def test_non_spec_entry_rejected(self):
        with pytest.raises(ConfigError, match="SimSpec, MultiProgSpec, or RunSpec"):
            sweep(["gzip"])


class TestRetiredSpellings:
    """The three pre-facade positional spellings completed their
    deprecation cycle and are gone: the signatures are keyword-only now
    (analysis rule L202 keeps them that way)."""

    def test_facade_positional_config_rejected(self, parallel_trace, config16):
        with pytest.raises(TypeError):
            simulate(parallel_trace, config16)

    def test_engine_positional_controller_rejected(self, parallel_trace, config16):
        with pytest.raises(TypeError):
            engine_simulate(parallel_trace, config16, StaticController(4))

    def test_run_trace_positional_warmup_rejected(self, parallel_trace, config16):
        with pytest.raises(TypeError):
            run_trace(parallel_trace, config16, None, 1_000)

    def test_keyword_spellings_do_not_warn(self, parallel_trace, config16):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate(parallel_trace, processor=config16)
            engine_simulate(parallel_trace, config16,
                            controller=StaticController(4))
            run_trace(parallel_trace, config16, warmup=1_000)


class TestMaxInstructionsContract:
    """`max_instructions` is commit-bounded: the run stops at the first
    cycle boundary at or past the limit, overshooting by at most
    ``commit_width - 1`` (see ``ClusteredProcessor.run``)."""

    def test_none_runs_whole_trace(self, parallel_trace, config16):
        stats = engine_simulate(parallel_trace, config16)
        assert stats.committed == len(parallel_trace)

    @pytest.mark.parametrize("limit", [1, 17, 1_000])
    def test_overshoot_bounded_by_commit_width(self, parallel_trace, config16, limit):
        stats = engine_simulate(parallel_trace, config16, max_instructions=limit)
        width = config16.front_end.commit_width
        assert limit <= stats.committed <= limit + width - 1

    def test_committed_count_pinned(self, parallel_trace, config16):
        """The exact committed count is deterministic — pin it so any change
        to the bounding behaviour (e.g. stopping mid-cycle) is caught."""
        a = engine_simulate(parallel_trace, config16, max_instructions=1_000)
        b = engine_simulate(parallel_trace, config16, max_instructions=1_000)
        assert a.committed == b.committed
        # and the bound is commit-cycle aligned: re-running the same machine
        # to the overshoot count commits exactly that many
        c = engine_simulate(
            parallel_trace, config16, max_instructions=a.committed
        )
        assert c.committed == a.committed

    def test_limit_beyond_trace_is_clamped(self, parallel_trace, config16):
        stats = engine_simulate(
            parallel_trace, config16, max_instructions=10 * len(parallel_trace)
        )
        assert stats.committed == len(parallel_trace)

    def test_narrow_commit_width_tightens_bound(self, parallel_trace, config16):
        narrow = dataclasses.replace(
            config16,
            front_end=dataclasses.replace(config16.front_end, commit_width=2),
        )
        proc = ClusteredProcessor(parallel_trace, narrow)
        stats = proc.run(101)
        assert 101 <= stats.committed <= 102
