"""Cross-module integration: controllers on live pipelines, the paper's
qualitative claims at test scale."""

from repro import (
    DistantILPController,
    ExploreConfig,
    FineGrainController,
    IntervalExploreController,
    NoExploreConfig,
    StaticController,
    decentralized_config,
    default_config,
    grid_config,
    simulate,
)
from repro.core.finegrain import FineGrainConfig
from repro.experiments.runner import run_trace
from repro.pipeline.processor import ClusteredProcessor


class TestDynamicControllersLive:
    def test_explore_adapts_on_phased_program(self, phased_trace, config16):
        ctrl = IntervalExploreController(
            ExploreConfig.scaled(initial_interval=400)
        )
        proc = ClusteredProcessor(phased_trace, config16, ctrl)
        proc.run()
        assert proc.stats.committed == len(phased_trace)
        assert proc.stats.reconfigurations > 0
        assert ctrl.choice_counts  # it settled on configurations

    def test_noexplore_picks_large_for_parallel(self, parallel_trace, config16):
        ctrl = DistantILPController(NoExploreConfig.scaled(interval_length=500))
        proc = ClusteredProcessor(parallel_trace, config16, ctrl)
        proc.run()
        counts = ctrl.choice_counts
        assert counts.get(16, 0) > counts.get(4, 0)

    def test_noexplore_picks_small_for_serial(self, serial_trace, config16):
        ctrl = DistantILPController(NoExploreConfig.scaled(interval_length=500))
        proc = ClusteredProcessor(serial_trace, config16, ctrl)
        proc.run()
        counts = ctrl.choice_counts
        assert counts.get(4, 0) > counts.get(16, 0)

    def test_noexplore_near_best_static(self, parallel_trace, config16):
        best = run_trace(parallel_trace, config16, StaticController(16), warmup=1500)
        dyn = run_trace(
            parallel_trace, config16,
            DistantILPController(NoExploreConfig.scaled(interval_length=500)),
            warmup=1500,
        )
        assert dyn.ipc >= best.ipc * 0.9

    def test_finegrain_runs_and_learns(self, phased_trace, config16):
        ctrl = FineGrainController(
            FineGrainConfig(samples_needed=3, distant_threshold=58)
        )
        proc = ClusteredProcessor(phased_trace, config16, ctrl)
        proc.run()
        assert proc.stats.committed == len(phased_trace)
        assert ctrl.table_hits > 0
        assert len(ctrl.table) > 0

    def test_subroutine_controller_on_benchmark(self, gzip_trace, config16):
        stats = simulate(
            gzip_trace, processor=config16, reconfig_policy="subroutine"
        ).stats
        assert stats.committed == len(gzip_trace)


class TestDecentralizedIntegration:
    def test_reconfiguration_with_flushes(self, phased_trace):
        config = decentralized_config(16)
        ctrl = DistantILPController(NoExploreConfig.scaled(interval_length=500))
        proc = ClusteredProcessor(phased_trace, config, ctrl)
        proc.run()
        assert proc.stats.committed == len(phased_trace)
        if proc.stats.reconfigurations:
            assert proc.stats.cache_flushes > 0

    def test_bank_prediction_learns_on_strided_code(self, parallel_trace):
        stats = simulate(parallel_trace, topology="decentralized").stats
        assert stats.bank_predictions > 0
        assert stats.bank_prediction_accuracy > 0.5

    def test_store_broadcasts_happen(self, parallel_trace):
        stats = simulate(parallel_trace, topology="decentralized").stats
        assert stats.store_broadcasts == stats.stores


class TestInterconnectIntegration:
    def test_grid_beats_ring_at_16_clusters(self, parallel_trace):
        """Section 6: better connectivity makes 16 clusters less
        communication bound."""
        ring = run_trace(parallel_trace, default_config(16), warmup=1500)
        grid = run_trace(parallel_trace, grid_config(16), warmup=1500)
        assert grid.ipc >= ring.ipc * 0.97

    def test_double_hop_latency_hurts(self, parallel_trace):
        import dataclasses

        base = default_config(16)
        slow = base.with_interconnect(
            dataclasses.replace(base.interconnect, hop_latency=2)
        )
        fast = run_trace(parallel_trace, base, warmup=1500)
        slowr = run_trace(parallel_trace, slow, warmup=1500)
        assert slowr.ipc < fast.ipc


class TestIdealizationIntegration:
    def test_free_communication_helps_16_clusters(self, parallel_trace):
        import dataclasses

        base = default_config(16)
        free = base.with_interconnect(
            dataclasses.replace(
                base.interconnect,
                free_memory_communication=True,
                free_register_communication=True,
            )
        )
        real = run_trace(parallel_trace, base, warmup=1500)
        ideal = run_trace(parallel_trace, free, warmup=1500)
        assert ideal.ipc > real.ipc * 1.05
