"""Configuration: Table 1 / Table 2 values and validation."""

import dataclasses

import pytest

from repro.config import (
    CacheConfig,
    ClusterConfig,
    FrontEndConfig,
    InterconnectConfig,
    MemoryConfig,
    ProcessorConfig,
    centralized_cache,
    config_summary,
    decentralized_cache,
    decentralized_config,
    default_config,
    grid_config,
    monolithic_config,
    validate_config,
)
from repro.errors import ConfigError


class TestTable1Defaults:
    """The paper's Table 1 simulator parameters."""

    def test_front_end(self):
        fe = FrontEndConfig()
        assert fe.fetch_queue_size == 64
        assert fe.fetch_width == 8
        assert fe.max_basic_blocks_per_fetch == 2
        assert fe.dispatch_width == 16
        assert fe.commit_width == 16
        assert fe.pipeline_depth >= 12  # "at least 12 cycles"

    def test_predictor_sizes(self):
        fe = FrontEndConfig()
        assert fe.bimodal_size == 2048
        assert fe.level1_size == 1024
        assert fe.history_bits == 10
        assert fe.level2_size == 4096
        assert fe.btb_sets == 2048
        assert fe.btb_assoc == 2

    def test_cluster_resources(self):
        c = ClusterConfig()
        assert c.issue_queue_size == 15
        assert c.regfile_size == 30
        assert c.int_alus == c.int_muls == c.fp_alus == c.fp_muls == 1

    def test_rob_and_memory(self):
        cfg = default_config()
        assert cfg.rob_size == 480
        assert cfg.memory.l2_latency == 25
        assert cfg.memory.memory_latency == 160


class TestTable2Defaults:
    """The paper's Table 2 cache parameters."""

    def test_centralized(self):
        mem = centralized_cache()
        assert mem.organization == "centralized"
        assert mem.l1.size == 32 * 1024
        assert mem.l1.assoc == 2
        assert mem.l1.line_size == 32
        assert mem.l1.banks == 4
        assert mem.l1.latency == 6
        assert mem.lsq_size_per_cluster == 15

    def test_decentralized(self):
        mem = decentralized_cache()
        assert mem.organization == "decentralized"
        assert mem.l1.size == 16 * 1024
        assert mem.l1.assoc == 2
        assert mem.l1.line_size == 8
        assert mem.l1.banks == 1
        assert mem.l1.latency == 4

    def test_cache_num_sets(self):
        cache = CacheConfig(size=32 * 1024, assoc=2, line_size=32)
        assert cache.num_sets == 512


class TestValidation:
    def test_zero_clusters_rejected(self):
        with pytest.raises(ConfigError):
            ProcessorConfig(num_clusters=0)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigError):
            ProcessorConfig(interconnect=InterconnectConfig(topology="hexgrid"))

    def test_unknown_organization_rejected(self):
        with pytest.raises(ConfigError):
            ProcessorConfig(memory=MemoryConfig(organization="banana"))

    def test_home_cluster_in_range(self):
        with pytest.raises(ConfigError):
            ProcessorConfig(num_clusters=4, home_cluster=4)

    def test_validate_grid_needs_rectangle(self):
        cfg = dataclasses.replace(
            grid_config(16), num_clusters=16
        )
        validate_config(cfg)  # 4x4 is fine

    def test_validate_positive_cluster_fields(self):
        cfg = default_config().with_cluster_resources(
            dataclasses.replace(ClusterConfig(), int_alus=0)
        )
        with pytest.raises(ConfigError):
            validate_config(cfg)

    def test_fetch_width_vs_queue(self):
        fe = dataclasses.replace(FrontEndConfig(), fetch_width=128)
        cfg = dataclasses.replace(default_config(), front_end=fe)
        with pytest.raises(ConfigError):
            validate_config(cfg)


class TestDerived:
    def test_with_clusters(self):
        cfg = default_config(16).with_clusters(4)
        assert cfg.num_clusters == 4
        assert cfg.cluster == default_config().cluster

    def test_max_inflight(self):
        cfg = default_config(16)
        assert cfg.max_inflight == 480  # ROB bound
        cfg2 = default_config(2)
        assert cfg2.max_inflight == 2 * 30 * 2

    def test_monolithic_has_16x_resources(self):
        mono = monolithic_config()
        base = default_config()
        assert mono.num_clusters == 1
        assert mono.cluster.issue_queue_size == 16 * base.cluster.issue_queue_size
        assert mono.cluster.regfile_size == 16 * base.cluster.regfile_size
        assert mono.cluster.int_alus == 16
        assert mono.memory.lsq_size_per_cluster == 16 * 15

    def test_decentralized_config(self):
        cfg = decentralized_config(16)
        assert cfg.memory.organization == "decentralized"
        validate_config(cfg)

    def test_summary_mentions_key_facts(self):
        text = config_summary(default_config(8))
        assert "8 clusters" in text
        assert "ring" in text
        assert "centralized" in text

    def test_configs_are_frozen(self):
        cfg = default_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.num_clusters = 4


class TestEnvSwitches:
    """The centralized environment-variable readers and their registry."""

    def test_registry_names_real_readers(self):
        import repro.config as config

        for name, (reader, purpose) in config.ENV_SWITCHES.items():
            assert name.startswith("REPRO_")
            assert callable(getattr(config, reader)), reader
            assert purpose

    def test_every_environ_read_goes_through_config(self):
        """D105 in spirit: no repro module reads os.environ directly
        (spawn_env and the config readers are the sanctioned doorway)."""
        import pathlib

        import repro

        src = pathlib.Path(repro.__file__).parent
        offenders = []
        for path in src.rglob("*.py"):
            if path.name == "config.py" or "analysis" in path.parts:
                continue
            text = path.read_text()
            if "os.environ" in text and "faults" not in path.name:
                offenders.append(str(path.relative_to(src)))
        assert offenders == [], offenders

    def test_env_int_and_float(self, monkeypatch):
        from repro.config import env_float, env_int

        monkeypatch.setenv("REPRO_TEST_X", "3")
        assert env_int("REPRO_TEST_X") == 3
        monkeypatch.setenv("REPRO_TEST_X", " 2.5 ")
        assert env_float("REPRO_TEST_X") == 2.5
        monkeypatch.setenv("REPRO_TEST_X", "bogus")
        assert env_int("REPRO_TEST_X", 7) == 7
        assert env_float("REPRO_TEST_X") is None
        monkeypatch.delenv("REPRO_TEST_X")
        assert env_int("REPRO_TEST_X") is None

    def test_spawn_env_overrides(self):
        from repro.config import spawn_env

        env = spawn_env(REPRO_TEST_Y=4)
        assert env["REPRO_TEST_Y"] == "4"
        assert "PATH" in env
