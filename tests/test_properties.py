"""Property-based tests on the core data structures and the simulator."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_config
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.combining import CombiningPredictor
from repro.interconnect.grid import GridTopology
from repro.interconnect.ring import RingTopology
from repro.memory.cache import SetAssocCache
from repro.config import CacheConfig
from repro.pipeline.processor import simulate
from repro.workloads.blocks import PhaseParams
from repro.workloads.generator import Profile, generate_trace


class TestRingProperties:
    @given(st.integers(min_value=2, max_value=32))
    @settings(max_examples=20, deadline=None)
    def test_route_endpoints_consistent(self, n):
        ring = RingTopology(n)
        for s in range(n):
            for d in range(n):
                assert len(ring.route(s, d)) == ring.hops(s, d) <= n // 2

    @given(st.integers(min_value=2, max_value=32))
    @settings(max_examples=20, deadline=None)
    def test_triangle_inequality(self, n):
        ring = RingTopology(n)
        for a in range(n):
            for b in range(n):
                for c in (0, n // 2):
                    assert ring.hops(a, b) <= ring.hops(a, c) + ring.hops(c, b)


class TestGridProperties:
    @given(st.sampled_from([4, 8, 9, 12, 16, 25]))
    @settings(max_examples=10, deadline=None)
    def test_route_matches_manhattan(self, n):
        grid = GridTopology(n)
        for s in range(n):
            for d in range(n):
                assert len(grid.route(s, d)) == grid.hops(s, d)


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=4095), st.booleans()),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_flush_writebacks_bounded_by_writes(self, accesses):
        cache = SetAssocCache(CacheConfig(size=512, assoc=2, line_size=32))
        writes = 0
        evict_writebacks = 0
        for addr, is_write in accesses:
            writes += is_write
            evict_writebacks += cache.access(addr, is_write).writeback
        assert cache.flush() + evict_writebacks <= writes

    @given(st.lists(st.integers(min_value=0, max_value=1023), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_second_access_always_hits(self, addrs):
        cache = SetAssocCache(CacheConfig(size=64 * 1024, assoc=8, line_size=32))
        for addr in addrs:
            cache.access(addr, False)
            assert cache.access(addr, False).hit


class TestPredictorProperties:
    @given(st.lists(st.tuples(st.integers(0, 2 ** 20), st.booleans()), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_predictor_never_crashes_and_returns_bool(self, stream):
        pred = CombiningPredictor(64, 64, 6, 64, 64)
        for pc, taken in stream:
            assert isinstance(pred.predict(pc), bool)
            pred.update(pc, taken)

    @given(st.lists(st.tuples(st.integers(0, 2 ** 14).map(lambda x: x * 4),
                              st.integers(0, 2 ** 16)), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_btb_returns_last_taken_target(self, updates):
        # PCs are 4-byte aligned in this ISA (the BTB tags pc >> 2)
        btb = BranchTargetBuffer(sets=1024, assoc=4)
        last = {}
        for pc, target in updates:
            btb.update(pc, target)
            last[pc] = target
        misses = 0
        for pc, target in last.items():
            got = btb.lookup(pc)
            if got is not None:
                assert got == last[pc]
            else:
                misses += 1
        assert misses <= len(last)  # misses only from capacity eviction


class TestSimulatorProperties:
    @given(
        body=st.integers(min_value=4, max_value=40),
        cross=st.floats(min_value=0.0, max_value=0.9),
        frac_load=st.floats(min_value=0.0, max_value=0.4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=8, deadline=None)
    def test_random_workloads_complete(self, body, cross, frac_load, seed):
        """Any well-formed workload must run to completion on any config."""
        phase = PhaseParams(
            name="h",
            body_size=body,
            cross_iter_dep=cross,
            frac_load=frac_load,
            frac_store=min(0.2, frac_load / 2),
            inner_branches=1,
        )
        trace = generate_trace(
            Profile(name="h", phases=(phase,), schedule="steady"), 1_500, seed=seed
        )
        stats = simulate(trace, default_config(4))
        assert stats.committed == len(trace)
        assert 0 < stats.ipc < 16
