"""Tracer sinks: the passive-observation contract and event emission."""

import dataclasses

import pytest

from repro import ClusteredProcessor, default_config
from repro.observability import (
    NULL_TRACER,
    JsonlTracer,
    MemoryTracer,
    Tracer,
    TraceSession,
    read_jsonl,
    validate_event,
)
from repro.observability.events import EVENT_FIELDS


def run(trace, config, tracer=None, policy=None):
    from repro.experiments.sweep import ControllerSpec

    makers = {
        "explore": ControllerSpec.explore,
        "no-explore": ControllerSpec.no_explore,
        "finegrain": ControllerSpec.finegrain,
    }
    controller = makers[policy]().build() if policy else None
    processor = ClusteredProcessor(trace, config, controller, tracer=tracer)
    processor.run()
    return processor.stats


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.sample_period == 0
        NULL_TRACER.emit("sample", cycle=0, committed=0)  # swallowed
        NULL_TRACER.close()

    def test_default_is_null(self, gzip_trace, config16):
        processor = ClusteredProcessor(gzip_trace, config16, None)
        assert processor.tracer is NULL_TRACER


class TestBitIdentity:
    """Tracing is passive: traced statistics equal untraced statistics."""

    @pytest.mark.parametrize("policy", [None, "explore", "no-explore",
                                        "finegrain"])
    def test_traced_equals_untraced(self, gzip_trace, config16, policy):
        baseline = run(gzip_trace, config16, policy=policy)
        traced = run(gzip_trace, config16, tracer=MemoryTracer(500),
                     policy=policy)
        assert dataclasses.asdict(traced) == dataclasses.asdict(baseline)

    def test_explicit_null_tracer_equals_none(self, gzip_trace, config16):
        baseline = run(gzip_trace, config16)
        explicit = run(gzip_trace, config16, tracer=NULL_TRACER)
        assert dataclasses.asdict(explicit) == dataclasses.asdict(baseline)


class TestMemoryTracer:
    def test_events_valid_and_ordered(self, gzip_trace, config16):
        tracer = MemoryTracer(sample_period=500)
        run(gzip_trace, config16, tracer=tracer, policy="explore")
        assert tracer.events, "an explore run must emit events"
        for event in tracer.events:
            validate_event(event)
        assert tracer.events[0]["kind"] == "run_start"
        assert tracer.events[0]["workload"] == gzip_trace.name
        cycles = [e["cycle"] for e in tracer.events]
        assert cycles == sorted(cycles), "events must be in cycle order"
        samples = [e for e in tracer.events if e["kind"] == "sample"]
        assert len(samples) >= 2
        assert all(s["rob"] >= 0 and s["ipc"] >= 0 for s in samples)

    def test_sample_period_throttles(self, gzip_trace, config16):
        coarse = MemoryTracer(sample_period=2_000)
        fine = MemoryTracer(sample_period=200)
        run(gzip_trace, config16, tracer=coarse)
        run(gzip_trace, config16, tracer=fine)
        count = lambda t: sum(e["kind"] == "sample" for e in t.events)
        assert count(fine) > count(coarse)

    def test_zero_period_disables_sampling(self, gzip_trace, config16):
        tracer = MemoryTracer(sample_period=0)
        run(gzip_trace, config16, tracer=tracer)
        assert all(e["kind"] != "sample" for e in tracer.events)

    def test_reconfig_events_match_stat(self, gzip_trace, config16):
        tracer = MemoryTracer(sample_period=0)
        stats = run(gzip_trace, config16, tracer=tracer, policy="explore")
        reconfigs = [e for e in tracer.events if e["kind"] == "reconfig"]
        assert len(reconfigs) == stats.reconfigurations
        for event in reconfigs:
            assert event["before"] != event["after"]


class TestJsonlTracer:
    def test_streams_and_round_trips(self, gzip_trace, config16, tmp_path):
        path = tmp_path / "events.jsonl"
        tracer = JsonlTracer(path, sample_period=500)
        run(gzip_trace, config16, tracer=tracer, policy="explore")
        tracer.close()
        memory = MemoryTracer(sample_period=500)
        run(gzip_trace, config16, tracer=memory, policy="explore")
        assert read_jsonl(path) == memory.events

    def test_emit_after_close_raises(self, tmp_path):
        tracer = JsonlTracer(tmp_path / "t.jsonl")
        tracer.close()
        tracer.close()  # idempotent
        with pytest.raises(ValueError):
            tracer.emit("sample", cycle=0, committed=0)


class TestTraceSession:
    def test_exports_three_files(self, gzip_trace, config16, tmp_path):
        session = TraceSession(tmp_path / "out", sample_period=500)
        run(gzip_trace, config16, tracer=session, policy="explore")
        session.close()
        session.close()  # idempotent
        for name in ("events.jsonl", "timeline.csv", "trace.json"):
            assert (tmp_path / "out" / name).exists()
        assert read_jsonl(tmp_path / "out" / "events.jsonl") == session.events


class TestControllerEmissions:
    def test_explore_cycle_event_sequence(self, phased_trace, config16):
        tracer = MemoryTracer(sample_period=0)
        run(phased_trace, config16, tracer=tracer, policy="explore")
        kinds = [e["kind"] for e in tracer.events]
        assert "explore_start" in kinds
        # within one exploration: start, then samples, then the decision
        # (or a phase change that aborts it)
        start = kinds.index("explore_start")
        tail = kinds[start + 1:]
        assert any(k in ("explore_decision", "phase_change") for k in tail)
        for event in tracer.events:
            if event["kind"] == "explore_decision":
                explored = event["explored"]
                assert explored == sorted(explored)
                assert event["chosen"] in [pair[0] for pair in explored]

    def test_no_explore_emits_decisions(self, phased_trace, config16):
        tracer = MemoryTracer(sample_period=0)
        run(phased_trace, config16, tracer=tracer, policy="no-explore")
        kinds = [e["kind"] for e in tracer.events]
        assert "measure_start" in kinds
        assert "distant_decision" in kinds
        for event in tracer.events:
            if event["kind"] == "distant_decision":
                assert event["chosen"] in (4, 16)

    def test_finegrain_emits_table_traffic(self, gzip_trace, config16):
        tracer = MemoryTracer(sample_period=0)
        run(gzip_trace, config16, tracer=tracer, policy="finegrain")
        kinds = [e["kind"] for e in tracer.events]
        assert "table_lookup" in kinds
        lookups = [e for e in tracer.events if e["kind"] == "table_lookup"]
        assert all((e["advised"] is None) == (not e["hit"]) for e in lookups)

    def test_interval_events_carry_window(self, gzip_trace, config16):
        tracer = MemoryTracer(sample_period=0)
        run(gzip_trace, config16, tracer=tracer, policy="explore")
        intervals = [e for e in tracer.events if e["kind"] == "interval"]
        assert intervals
        for event in intervals:
            assert event["controller"] == "IntervalExploreController"
            assert event["interval_length"] >= 1
            assert event["ipc"] >= 0


class TestSchemaCoverage:
    """Every kind in EVENT_FIELDS round-trips through validate_event.

    This is the exhaustive schema check the S304 analysis rule pins: a new
    event kind added to ``EVENT_FIELDS`` is automatically covered here, but
    the rule still fails if this file stops importing/validating the table.
    """

    @pytest.mark.parametrize("kind", sorted(EVENT_FIELDS))
    def test_kind_validates(self, kind):
        event = {"kind": kind, "cycle": 1, "committed": 1}
        event.update({f: 0 for f in EVENT_FIELDS[kind]})
        validate_event(event)

    @pytest.mark.parametrize("kind", sorted(EVENT_FIELDS))
    def test_kind_rejects_extra_and_missing_fields(self, kind):
        event = {"kind": kind, "cycle": 1, "committed": 1}
        event.update({f: 0 for f in EVENT_FIELDS[kind]})
        with pytest.raises(ValueError, match="unexpected"):
            validate_event({**event, "bogus": 1})
        short = dict(event)
        del short["committed"]
        with pytest.raises(ValueError, match="missing"):
            validate_event(short)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            validate_event({"kind": "warp_core_breach", "cycle": 1,
                            "committed": 1})


class TestFaultEmissions:
    """Architectural fault events: fault_inject and the remap pair."""

    def faulted_run(self, trace, config, policy="explore"):
        from repro.experiments.sweep import ControllerSpec
        from repro.resilience import FaultEvent, FaultSchedule

        schedule = FaultSchedule((
            FaultEvent(cycle=800, kind="cluster_kill", cluster=5),
            FaultEvent(cycle=1_000, kind="fu_disable", cluster=2,
                       unit="int_alu"),
            FaultEvent(cycle=1_200, kind="link_degrade", src=1, dst=2),
            FaultEvent(cycle=2_000, kind="cluster_restore", cluster=5),
        ))
        tracer = MemoryTracer(sample_period=0)
        makers = {"explore": ControllerSpec.explore,
                  "finegrain": ControllerSpec.finegrain}
        processor = ClusteredProcessor(
            trace, config, makers[policy]().build(), tracer=tracer,
            fault_schedule=schedule,
        )
        processor.run()
        return tracer, processor.stats, schedule

    def test_fault_events_validate_and_count(self, gzip_trace, config16):
        tracer, stats, schedule = self.faulted_run(gzip_trace, config16)
        for event in tracer.events:
            validate_event(event)
        injects = [e for e in tracer.events if e["kind"] == "fault_inject"]
        assert len(injects) == len(schedule) == stats.faults_injected
        assert [e["fault"] for e in injects] == [
            ev.kind for ev in schedule.events
        ]
        assert injects[0]["target"] == "cluster:5"

    def test_kill_emits_remap_pair(self, gzip_trace, config16):
        tracer, stats, _ = self.faulted_run(gzip_trace, config16)
        starts = [e for e in tracer.events if e["kind"] == "remap_start"]
        dones = [e for e in tracer.events if e["kind"] == "remap_done"]
        assert len(starts) == len(dones) == 1
        assert starts[0]["target"] == dones[0]["target"] == "cluster:5"
        assert starts[0]["live"] == config16.num_clusters - 1
        assert dones[0]["latency"] >= 0
        assert dones[0]["cycle"] >= starts[0]["cycle"]
        assert stats.cluster_kills == 1

    def test_faulted_tracing_is_passive(self, gzip_trace, config16):
        _, traced_stats, _ = self.faulted_run(gzip_trace, config16)
        _, again, _ = self.faulted_run(gzip_trace, config16)
        assert dataclasses.asdict(traced_stats) == dataclasses.asdict(again)


class TestSubclassContract:
    def test_custom_tracer_receives_kind_first(self, gzip_trace, config16):
        seen = []

        class Probe(Tracer):
            enabled = True
            sample_period = 1_000

            def emit(self, kind, **fields):
                seen.append((kind, fields))

        run(gzip_trace, config16, tracer=Probe())
        assert seen[0][0] == "run_start"
        assert {"cycle", "committed"} <= set(seen[0][1])
