"""Exporters: JSONL round-trips, the CSV timeline, and Chrome traces."""

import csv
import json

from repro import ClusteredProcessor
from repro.observability import (
    MemoryTracer,
    chrome_trace,
    read_jsonl,
    spans_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_timeline_csv,
)
from repro.observability.exporters import TIMELINE_COLUMNS


def traced_events(trace, config, policy="explore"):
    from repro.experiments.sweep import ControllerSpec

    controller = getattr(ControllerSpec, policy.replace("-", "_"))().build()
    tracer = MemoryTracer(sample_period=500)
    ClusteredProcessor(trace, config, controller, tracer=tracer).run()
    return tracer.events


class TestJsonl:
    def test_round_trip_preserves_everything(self, gzip_trace, config16,
                                             tmp_path):
        events = traced_events(gzip_trace, config16)
        path = tmp_path / "events.jsonl"
        write_jsonl(events, path)
        assert read_jsonl(path) == events

    def test_field_order_preserved_on_disk(self, gzip_trace, config16,
                                           tmp_path):
        events = traced_events(gzip_trace, config16)
        path = tmp_path / "events.jsonl"
        write_jsonl(events, path)
        first = path.read_text().splitlines()[0]
        keys = list(json.loads(first).keys())
        assert keys[:3] == ["kind", "cycle", "committed"]


class TestTimelineCsv:
    def test_one_row_per_sample(self, gzip_trace, config16, tmp_path):
        events = traced_events(gzip_trace, config16)
        path = tmp_path / "timeline.csv"
        write_timeline_csv(events, path)
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert tuple(rows[0]) == TIMELINE_COLUMNS
        samples = [e for e in events if e["kind"] == "sample"]
        assert len(rows) == 1 + len(samples)
        for row, event in zip(rows[1:], samples):
            assert int(row[0]) == event["cycle"]
            assert float(row[2]) == event["ipc"]


class TestChromeTrace:
    def test_structure(self, gzip_trace, config16):
        events = traced_events(gzip_trace, config16)
        doc = chrome_trace(events)
        trace = doc["traceEvents"]
        assert trace, "trace must not be empty"
        phases = {e["ph"] for e in trace}
        assert "M" in phases  # process/thread names
        assert "C" in phases  # counters
        assert "i" in phases  # controller instants
        counters = {e["name"] for e in trace if e["ph"] == "C"}
        assert {"IPC", "active clusters", "ROB"} <= counters
        for event in trace:
            if "ts" in event:
                assert isinstance(event["ts"], int) and event["ts"] >= 0

    def test_explore_spans_balanced(self, phased_trace, config16):
        events = traced_events(phased_trace, config16)
        trace = chrome_trace(events)["traceEvents"]
        begins = sum(1 for e in trace if e.get("ph") == "B")
        ends = sum(1 for e in trace if e.get("ph") == "E")
        assert begins == ends
        assert begins >= 1

    def test_write_is_valid_json(self, gzip_trace, config16, tmp_path):
        events = traced_events(gzip_trace, config16)
        path = tmp_path / "trace.json"
        write_chrome_trace(events, path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestSpansChromeTrace:
    def test_lane_packing(self):
        spans = [
            {"name": "a", "start": 0.0, "end": 1.0},
            {"name": "b", "start": 0.5, "end": 1.5},  # overlaps a
            {"name": "c", "start": 1.2, "end": 2.0},  # fits after a
        ]
        trace = spans_chrome_trace(spans)["traceEvents"]
        slices = {e["name"]: e for e in trace if e["ph"] == "X"}
        assert slices["a"]["tid"] != slices["b"]["tid"]
        assert slices["c"]["tid"] == slices["a"]["tid"]

    def test_durations_in_microseconds(self):
        spans = [{"name": "a", "start": 1.0, "end": 3.5,
                  "args": {"status": "ok"}}]
        (slice_,) = [e for e in spans_chrome_trace(spans)["traceEvents"]
                     if e["ph"] == "X"]
        assert slice_["ts"] == 1_000_000
        assert slice_["dur"] == 2_500_000
        assert slice_["args"] == {"status": "ok"}

    def test_zero_length_span_gets_min_duration(self):
        spans = [{"name": "a", "start": 1.0, "end": 1.0}]
        (slice_,) = [e for e in spans_chrome_trace(spans)["traceEvents"]
                     if e["ph"] == "X"]
        assert slice_["dur"] == 1
