"""Golden-file pin of the trace event schema.

One seeded interval-exploration run has its full event stream committed as
``golden_events.jsonl``.  If this test fails you have changed either the
event schema (field names/order), the emission sites, or simulator timing
— all of which break downstream trace consumers.  If the change is
intentional, regenerate with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/observability/test_schema_golden.py

and document new fields in docs/OBSERVABILITY.md.
"""

import json
import os
import pathlib

import pytest

from repro import ClusteredProcessor, default_config, generate_trace, get_profile
from repro.experiments.sweep import ControllerSpec
from repro.observability import MemoryTracer, validate_event

GOLDEN = pathlib.Path(__file__).with_name("golden_events.jsonl")

#: the pinned run: short but long enough to exercise exploration
PROFILE = "gzip"
LENGTH = 8_000
SEED = 3
SAMPLE_PERIOD = 500


def golden_run():
    trace = generate_trace(get_profile(PROFILE), LENGTH, seed=SEED)
    tracer = MemoryTracer(sample_period=SAMPLE_PERIOD)
    controller = ControllerSpec.explore().build()
    ClusteredProcessor(trace, default_config(16), controller,
                       tracer=tracer).run()
    return tracer.events


def test_golden_event_stream():
    events = golden_run()
    for event in events:
        validate_event(event)

    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN.write_text(
            "".join(json.dumps(e, separators=(", ", ": ")) + "\n"
                    for e in events)
        )
        pytest.skip(f"regenerated {GOLDEN.name} with {len(events)} events")

    expected = [json.loads(line) for line in GOLDEN.read_text().splitlines()]
    kinds = [e["kind"] for e in events]
    assert kinds == [e["kind"] for e in expected], "event sequence changed"
    for got, want in zip(events, expected):
        assert list(got.keys()) == list(want.keys()), (
            f"field order of {got['kind']!r} changed"
        )
        for key, value in want.items():
            if isinstance(value, float):
                assert got[key] == pytest.approx(value), (got["kind"], key)
            else:
                assert got[key] == value, (got["kind"], key)
