"""SlotReserver: the shared bandwidth primitive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing import SlotReserver


class TestBasics:
    def test_first_request_gets_requested_cycle(self):
        r = SlotReserver(2)
        assert r.reserve(0, 10) == 10

    def test_same_cycle_conflict_pushes_later(self):
        r = SlotReserver(1)
        assert r.reserve(0, 10) == 10
        assert r.reserve(0, 10) == 11
        assert r.reserve(0, 10) == 12

    def test_resources_independent(self):
        r = SlotReserver(2)
        assert r.reserve(0, 10) == 10
        assert r.reserve(1, 10) == 10

    def test_gap_filling(self):
        r = SlotReserver(1)
        assert r.reserve(0, 100) == 100
        assert r.reserve(0, 10) == 10  # earlier slot still free

    def test_capacity_two(self):
        r = SlotReserver(1, capacity_per_slot=2)
        assert r.reserve(0, 5) == 5
        assert r.reserve(0, 5) == 5
        assert r.reserve(0, 5) == 6

    def test_reset(self):
        r = SlotReserver(1)
        r.reserve(0, 10)
        r.reset()
        assert r.reserve(0, 10) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            SlotReserver(0)
        with pytest.raises(ValueError):
            SlotReserver(1, capacity_per_slot=0)


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_never_overbooks(self, requests):
        r = SlotReserver(1)
        granted = [r.reserve(0, req) for req in requests]
        assert len(set(granted)) == len(granted)  # capacity 1: all distinct

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_grants_at_or_after_request(self, requests):
        r = SlotReserver(1)
        for req in requests:
            assert r.reserve(0, req) >= req

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_respected(self, requests, cap):
        r = SlotReserver(1, capacity_per_slot=cap)
        granted = [r.reserve(0, req) for req in requests]
        for cycle in set(granted):
            assert granted.count(cycle) <= cap

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_work_conserving(self, requests):
        """The granted slot is the earliest free slot >= the request."""
        r = SlotReserver(1)
        booked = set()
        for req in requests:
            got = r.reserve(0, req)
            expected = req
            while expected in booked:
                expected += 1
            assert got == expected
            booked.add(got)
