"""Execute every ```python code block in README.md and docs/*.md.

The documentation's code blocks are part of the API surface: if a rename
or vocabulary change breaks an example, this test fails with the block's
file and line.  Blocks run in a subprocess with ``PYTHONPATH=src`` from a
scratch directory, so examples may write files freely.

Fragments that are illustrative rather than executable must use a
different fence tag (```text, ```console, bare ```); ```python means
"this runs".  A block whose first line is ``# docs: slow`` still runs,
but under the ``slow`` marker (multi-second examples — e.g. the
multiprogrammed sweeps in docs/MULTIPROG.md — stay out of the fast PR
lane without losing coverage).
"""

import os
import pathlib
import re
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

_FENCE = re.compile(r"^```python\s*$")


def python_blocks(path):
    """Yield (lineno, source) for each ```python fenced block."""
    lines = path.read_text(encoding="utf-8").splitlines()
    block_start = None
    block = []
    for number, line in enumerate(lines, start=1):
        if block_start is None:
            if _FENCE.match(line):
                block_start = number + 1
                block = []
        elif line.strip() == "```":
            yield block_start, "\n".join(block) + "\n"
            block_start = None
        else:
            block.append(line)
    assert block_start is None, f"{path}: unterminated ```python fence"


_SLOW_MARKER = "# docs: slow"


def _marks(source):
    return [pytest.mark.slow] if source.lstrip().startswith(_SLOW_MARKER) else []


BLOCKS = [
    pytest.param(path, lineno, source,
                 id=f"{path.relative_to(REPO)}:{lineno}",
                 marks=_marks(source))
    for path in DOC_FILES
    for lineno, source in python_blocks(path)
]


def test_docs_have_python_blocks():
    assert len(BLOCKS) >= 5, "docs lost their runnable examples"


@pytest.mark.parametrize("path,lineno,source", BLOCKS)
def test_docs_block_runs(path, lineno, source, tmp_path, monkeypatch):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    proc = subprocess.run(
        [sys.executable, "-"],
        input=source,
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{path.relative_to(REPO)}:{lineno} failed "
        f"(exit {proc.returncode})\nstdout:\n{proc.stdout}\n"
        f"stderr:\n{proc.stderr}"
    )
