"""The 15-case fingerprint: tracing must never perturb the simulation.

Every topology x reconfiguration-policy combination is run twice — once
untraced, once with an aggressive tracer attached — and the full SimStats
must match bit-for-bit.  This pins the observability subsystem's core
contract (tracers are passive observers) across every controller code
path, including the ones that emit from dispatch and commit hot loops.
"""

import dataclasses

import pytest

from repro import generate_trace, get_profile, simulate
from repro.observability import MemoryTracer

TOPOLOGIES = ("ring", "grid", "decentralized")
POLICIES = ("none", "static-4", "explore", "no-explore", "finegrain")

_TRACE = generate_trace(get_profile("gzip"), 3_000, seed=13)


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("policy", POLICIES)
def test_traced_run_is_bit_identical(topology, policy):
    kwargs = dict(topology=topology, reconfig_policy=policy, warmup=500)
    baseline = simulate(_TRACE, **kwargs)
    traced = simulate(_TRACE, trace=MemoryTracer(sample_period=100), **kwargs)
    assert dataclasses.asdict(traced.stats) == dataclasses.asdict(
        baseline.stats
    )
    assert traced.ipc == baseline.ipc
    assert traced.cycles == baseline.cycles
    assert traced.reconfigurations == baseline.reconfigurations
