"""The 25-case fingerprint: tracing must never perturb the simulation.

Every topology x reconfiguration-policy combination is run twice — once
untraced, once with an aggressive tracer attached — and the full SimStats
must match bit-for-bit.  This pins the observability subsystem's core
contract (tracers are passive observers) across every controller code
path, including the ones that emit from dispatch and commit hot loops.

Each case's untraced SimStats is additionally pinned as a digest in
``golden_fingerprints.json``: any change to simulator timing on any
topology (including torus and ring-of-rings) fails here first.  After an
intentional timing change, regenerate with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_fingerprint.py
"""

import dataclasses
import hashlib
import json
import os
import pathlib

import pytest

from repro import generate_trace, get_profile, simulate
from repro.observability import MemoryTracer
from repro.resilience import FaultEvent, FaultSchedule

TOPOLOGIES = ("ring", "grid", "decentralized", "torus", "ring-of-rings")
POLICIES = ("none", "static-4", "explore", "no-explore", "finegrain")

#: faulted fingerprint cases: each scenario is pinned to one controller so
#: the faulted matrix stays bounded while still crossing every fault kind
#: with every topology.  Link endpoints (1, 2) / (2, 3) are neighbors on
#: all five fabrics.
FAULT_SCENARIOS = {
    "kill": (
        "explore",
        FaultSchedule((FaultEvent(cycle=900, kind="cluster_kill", cluster=5),)),
    ),
    "kill-restore": (
        "no-explore",
        FaultSchedule((
            FaultEvent(cycle=800, kind="cluster_kill", cluster=3),
            FaultEvent(cycle=1600, kind="cluster_restore", cluster=3),
        )),
    ),
    "fu-disable": (
        "finegrain",
        FaultSchedule((
            FaultEvent(cycle=700, kind="fu_disable", cluster=2, unit="int_alu"),
            FaultEvent(cycle=1200, kind="fu_disable", cluster=6, unit="fp_alu"),
        )),
    ),
    "link-degrade": (
        "static-4",
        FaultSchedule((
            FaultEvent(cycle=600, kind="link_degrade", src=1, dst=2, factor=4),
        )),
    ),
    "link-sever": (
        "none",
        FaultSchedule((FaultEvent(cycle=1000, kind="link_sever", src=2, dst=3),)),
    ),
    "mixed": (
        "explore",
        FaultSchedule((
            FaultEvent(cycle=800, kind="cluster_kill", cluster=7),
            FaultEvent(cycle=900, kind="link_degrade", src=1, dst=2),
            FaultEvent(cycle=1000, kind="fu_disable", cluster=4, unit="fp_mul"),
        )),
    ),
}

GOLDEN = pathlib.Path(__file__).with_name("golden_fingerprints.json")

_TRACE = generate_trace(get_profile("gzip"), 3_000, seed=13)


def fingerprint(stats):
    """A short stable digest of the full SimStats (order-independent)."""
    payload = json.dumps(dataclasses.asdict(stats), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("policy", POLICIES)
def test_traced_run_is_bit_identical(topology, policy):
    kwargs = dict(topology=topology, reconfig_policy=policy, warmup=500)
    baseline = simulate(_TRACE, **kwargs)
    traced = simulate(_TRACE, trace=MemoryTracer(sample_period=100), **kwargs)
    assert dataclasses.asdict(traced.stats) == dataclasses.asdict(
        baseline.stats
    )
    assert traced.ipc == baseline.ipc
    assert traced.cycles == baseline.cycles
    assert traced.reconfigurations == baseline.reconfigurations

    _check_golden(f"{topology}/{policy}", fingerprint(baseline.stats))


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("scenario", sorted(FAULT_SCENARIOS))
def test_faulted_run_is_bit_identical(topology, scenario):
    """Fault injection must stay deterministic and tracer-transparent."""
    policy, schedule = FAULT_SCENARIOS[scenario]
    kwargs = dict(
        topology=topology, reconfig_policy=policy, warmup=500, faults=schedule
    )
    baseline = simulate(_TRACE, **kwargs)
    traced = simulate(_TRACE, trace=MemoryTracer(sample_period=100), **kwargs)
    assert dataclasses.asdict(traced.stats) == dataclasses.asdict(
        baseline.stats
    )
    assert traced.cycles == baseline.cycles
    assert baseline.stats.faults_injected == len(schedule)
    _check_golden(
        f"{topology}/{policy}+{scenario}", fingerprint(baseline.stats)
    )


def test_batched_runs_match_every_golden():
    """All 55 fingerprint cases replayed through one lockstep
    :class:`~repro.batch.BatchEngine` must reproduce the committed
    digests bit-for-bit — the batch engine is a mechanism, never a
    timing model."""
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("goldens are being regenerated from the serial paths")
    from repro.api import SimSpec
    from repro.batch import BatchEngine, BatchJob

    cases = {}
    for topology in TOPOLOGIES:
        for policy in POLICIES:
            cases[f"{topology}/{policy}"] = (topology, policy, None)
        for scenario, (policy, schedule) in FAULT_SCENARIOS.items():
            cases[f"{topology}/{policy}+{scenario}"] = (
                topology, policy, schedule,
            )
    engine = BatchEngine(batch_size=7)
    for key, (topology, policy, schedule) in cases.items():
        spec = SimSpec(
            workload=_TRACE, topology=topology, reconfig_policy=policy,
            warmup=500, faults=schedule,
        )
        engine.submit(key, BatchJob(
            trace=_TRACE,
            config=spec.processor_config(),
            controller=spec.controller_spec().build(),
            warmup=500,
            fault_schedule=schedule,
        ))
    expected = json.loads(GOLDEN.read_text())
    seen = set()
    for outcome in engine.run():
        assert outcome.ok, (outcome.key, outcome.error)
        assert fingerprint(outcome.result.stats) == expected[outcome.key], (
            f"batched fingerprint diverged from golden for {outcome.key}"
        )
        seen.add(outcome.key)
    assert seen == set(cases)


def _check_golden(key, digest):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        data = json.loads(GOLDEN.read_text()) if GOLDEN.exists() else {}
        data[key] = digest
        GOLDEN.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated fingerprint for {key}")
    expected = json.loads(GOLDEN.read_text())
    assert key in expected, (
        f"no golden fingerprint for {key}; regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )
    assert digest == expected[key], (
        f"simulation fingerprint changed for {key}; if the timing change "
        "is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )
