"""The 25-case fingerprint: tracing must never perturb the simulation.

Every topology x reconfiguration-policy combination is run twice — once
untraced, once with an aggressive tracer attached — and the full SimStats
must match bit-for-bit.  This pins the observability subsystem's core
contract (tracers are passive observers) across every controller code
path, including the ones that emit from dispatch and commit hot loops.

Each case's untraced SimStats is additionally pinned as a digest in
``golden_fingerprints.json``: any change to simulator timing on any
topology (including torus and ring-of-rings) fails here first.  After an
intentional timing change, regenerate with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_fingerprint.py
"""

import dataclasses
import hashlib
import json
import os
import pathlib

import pytest

from repro import generate_trace, get_profile, simulate
from repro.observability import MemoryTracer

TOPOLOGIES = ("ring", "grid", "decentralized", "torus", "ring-of-rings")
POLICIES = ("none", "static-4", "explore", "no-explore", "finegrain")

GOLDEN = pathlib.Path(__file__).with_name("golden_fingerprints.json")

_TRACE = generate_trace(get_profile("gzip"), 3_000, seed=13)


def fingerprint(stats):
    """A short stable digest of the full SimStats (order-independent)."""
    payload = json.dumps(dataclasses.asdict(stats), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("policy", POLICIES)
def test_traced_run_is_bit_identical(topology, policy):
    kwargs = dict(topology=topology, reconfig_policy=policy, warmup=500)
    baseline = simulate(_TRACE, **kwargs)
    traced = simulate(_TRACE, trace=MemoryTracer(sample_period=100), **kwargs)
    assert dataclasses.asdict(traced.stats) == dataclasses.asdict(
        baseline.stats
    )
    assert traced.ipc == baseline.ipc
    assert traced.cycles == baseline.cycles
    assert traced.reconfigurations == baseline.reconfigurations

    key = f"{topology}/{policy}"
    digest = fingerprint(baseline.stats)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        data = json.loads(GOLDEN.read_text()) if GOLDEN.exists() else {}
        data[key] = digest
        GOLDEN.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated fingerprint for {key}")
    expected = json.loads(GOLDEN.read_text())
    assert key in expected, (
        f"no golden fingerprint for {key}; regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )
    assert digest == expected[key], (
        f"simulation fingerprint changed for {key}; if the timing change "
        "is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )
