"""FaultManager end-to-end: counters, idempotency, degradation accounting."""

import dataclasses

import pytest

from repro import ClusteredProcessor, default_config, simulate
from repro.errors import ConfigError, UnreachableCluster
from repro.resilience import FaultEvent, FaultSchedule


def run_faulted(trace, config, schedule, controller=None):
    processor = ClusteredProcessor(
        trace, config, controller, fault_schedule=schedule
    )
    processor.run()
    return processor


class TestCounters:
    def test_each_kind_counts_once(self, gzip_trace, config16):
        schedule = FaultSchedule((
            FaultEvent(cycle=500, kind="cluster_kill", cluster=5),
            FaultEvent(cycle=600, kind="link_sever", src=2, dst=3),
            FaultEvent(cycle=700, kind="link_degrade", src=1, dst=2),
            FaultEvent(cycle=800, kind="fu_disable", cluster=4,
                       unit="int_alu"),
        ))
        stats = run_faulted(gzip_trace, config16, schedule).stats
        assert stats.faults_injected == 4
        assert stats.cluster_kills == 1
        assert stats.links_severed == 1
        assert stats.links_degraded == 1
        assert stats.fu_faults == 1
        assert stats.degraded_cycles > 0
        assert stats.recovery_cycles >= 0

    def test_duplicate_events_are_idempotent(self, gzip_trace, config16):
        schedule = FaultSchedule((
            FaultEvent(cycle=500, kind="cluster_kill", cluster=5),
            FaultEvent(cycle=600, kind="cluster_kill", cluster=5),
            FaultEvent(cycle=700, kind="fu_disable", cluster=4,
                       unit="fp_alu"),
            FaultEvent(cycle=800, kind="fu_disable", cluster=4,
                       unit="fp_alu"),
        ))
        stats = run_faulted(gzip_trace, config16, schedule).stats
        # the second kill and second disable hit already-faulted hardware:
        # applied as no-ops, not double-counted
        assert stats.faults_injected == 2
        assert stats.cluster_kills == 1
        assert stats.fu_faults == 1

    def test_noop_restores_not_counted(self, gzip_trace, config16):
        schedule = FaultSchedule((
            FaultEvent(cycle=500, kind="cluster_restore", cluster=5),
            FaultEvent(cycle=600, kind="fu_enable", cluster=4,
                       unit="int_alu"),
            FaultEvent(cycle=700, kind="link_restore", src=1, dst=2),
        ))
        stats = run_faulted(gzip_trace, config16, schedule).stats
        assert stats.faults_injected == 0
        assert stats.degraded_cycles == 0

    def test_restore_closes_degraded_interval(self, gzip_trace, config16):
        open_ended = FaultSchedule((
            FaultEvent(cycle=500, kind="cluster_kill", cluster=5),
        ))
        repaired = FaultSchedule((
            FaultEvent(cycle=500, kind="cluster_kill", cluster=5),
            FaultEvent(cycle=1_000, kind="cluster_restore", cluster=5),
        ))
        degraded_forever = run_faulted(gzip_trace, config16, open_ended).stats
        degraded_window = run_faulted(gzip_trace, config16, repaired).stats
        assert 0 < degraded_window.degraded_cycles
        assert degraded_window.degraded_cycles < degraded_forever.degraded_cycles


class TestValidation:
    def test_bad_link_fails_at_construction(self, gzip_trace, config16):
        # clusters 1 and 5 are not ring neighbours
        schedule = FaultSchedule((
            FaultEvent(cycle=500, kind="link_sever", src=1, dst=5),
        ))
        with pytest.raises(ConfigError, match="physical neighbours"):
            ClusteredProcessor(gzip_trace, config16, None,
                               fault_schedule=schedule)

    def test_home_kill_fails_at_construction(self, gzip_trace, config16):
        schedule = FaultSchedule((
            FaultEvent(cycle=500, kind="cluster_kill",
                       cluster=config16.home_cluster),
        ))
        with pytest.raises(ConfigError, match="home cluster"):
            ClusteredProcessor(gzip_trace, config16, None,
                               fault_schedule=schedule)


class TestPartition:
    def test_partitioned_fabric_raises_unreachable(self, gzip_trace):
        # on a 4-node ring, severing both of cluster 1's wires isolates it
        config = default_config(4)
        schedule = FaultSchedule((
            FaultEvent(cycle=500, kind="link_sever", src=0, dst=1),
            FaultEvent(cycle=500, kind="link_sever", src=1, dst=2),
        ))
        with pytest.raises(UnreachableCluster, match="partitioned"):
            run_faulted(gzip_trace, config, schedule)


class TestDegradationIsGraceful:
    def test_killed_cluster_stops_committing_machine_does_not(
        self, gzip_trace, config16
    ):
        schedule = FaultSchedule((
            FaultEvent(cycle=500, kind="cluster_kill", cluster=5),
        ))
        healthy = simulate(gzip_trace, topology="ring")
        degraded = simulate(gzip_trace, topology="ring", faults=schedule)
        assert degraded.stats.committed == healthy.stats.committed
        assert degraded.cycles >= healthy.cycles
        assert degraded.ipc > 0

    def test_fu_fault_costs_less_than_cluster_kill(self, gzip_trace, config16):
        kill = FaultSchedule((
            FaultEvent(cycle=500, kind="cluster_kill", cluster=5),
        ))
        fu = FaultSchedule((
            FaultEvent(cycle=500, kind="fu_disable", cluster=5,
                       unit="int_mul"),
        ))
        killed = simulate(gzip_trace, topology="ring", faults=kill)
        nicked = simulate(gzip_trace, topology="ring", faults=fu)
        assert nicked.cycles <= killed.cycles

    def test_rerun_is_bit_identical(self, gzip_trace, config16):
        schedule = FaultSchedule((
            FaultEvent(cycle=500, kind="cluster_kill", cluster=5),
            FaultEvent(cycle=900, kind="link_degrade", src=2, dst=3),
        ))
        first = run_faulted(gzip_trace, config16, schedule).stats
        second = run_faulted(gzip_trace, config16, schedule).stats
        assert dataclasses.asdict(first) == dataclasses.asdict(second)
