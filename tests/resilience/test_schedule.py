"""FaultSchedule / FaultEvent: validation, serialization, generation."""

import pytest

from repro import default_config
from repro.errors import ConfigError
from repro.resilience import (
    FAULT_KINDS,
    FU_POOLS,
    FaultEvent,
    FaultSchedule,
)


class TestFaultEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultEvent(cycle=10, kind="meteor_strike")

    def test_cycle_must_be_positive(self):
        with pytest.raises(ConfigError, match="cycle must be >= 1"):
            FaultEvent(cycle=0, kind="cluster_kill", cluster=1)

    @pytest.mark.parametrize("kind", ["cluster_kill", "cluster_restore",
                                      "fu_disable", "fu_enable"])
    def test_cluster_kinds_need_target(self, kind):
        unit = {"unit": "int_alu"} if kind.startswith("fu_") else {}
        with pytest.raises(ConfigError, match="target cluster"):
            FaultEvent(cycle=10, kind=kind, **unit)

    @pytest.mark.parametrize("kind", ["link_sever", "link_degrade",
                                      "link_restore"])
    def test_link_kinds_need_distinct_endpoints(self, kind):
        with pytest.raises(ConfigError, match="endpoints"):
            FaultEvent(cycle=10, kind=kind)
        with pytest.raises(ConfigError, match="endpoints"):
            FaultEvent(cycle=10, kind=kind, src=3, dst=3)

    def test_fu_kinds_need_known_pool(self):
        with pytest.raises(ConfigError, match="unit in"):
            FaultEvent(cycle=10, kind="fu_disable", cluster=1, unit="dividers")
        for unit in FU_POOLS:
            FaultEvent(cycle=10, kind="fu_disable", cluster=1, unit=unit)

    def test_degrade_factor_floor(self):
        with pytest.raises(ConfigError, match="factor"):
            FaultEvent(cycle=10, kind="link_degrade", src=1, dst=2, factor=1)

    def test_target_labels(self):
        assert FaultEvent(cycle=1, kind="cluster_kill",
                          cluster=3).target_label() == "cluster:3"
        assert FaultEvent(cycle=1, kind="link_sever", src=2,
                          dst=3).target_label() == "link:2->3"
        assert FaultEvent(cycle=1, kind="fu_disable", cluster=3,
                          unit="int_alu").target_label() == "fu:3:int_alu"


class TestScheduleContainer:
    def test_events_sorted_stably_by_cycle(self):
        a = FaultEvent(cycle=200, kind="cluster_kill", cluster=1)
        b = FaultEvent(cycle=100, kind="cluster_kill", cluster=2)
        c = FaultEvent(cycle=100, kind="fu_disable", cluster=3, unit="fp_alu")
        schedule = FaultSchedule((a, b, c))
        assert schedule.events == (b, c, a)  # same-cycle order preserved

    def test_bool_and_len(self):
        assert not FaultSchedule()
        assert len(FaultSchedule()) == 0
        one = FaultSchedule((FaultEvent(cycle=5, kind="cluster_kill",
                                        cluster=1),))
        assert one and len(one) == 1

    def test_non_event_rejected(self):
        with pytest.raises(ConfigError, match="must be FaultEvent"):
            FaultSchedule(({"kind": "cluster_kill"},))


class TestValidateFor:
    def test_home_cluster_is_fault_protected(self):
        config = default_config(16)
        for kind, extra in (("cluster_kill", {}),
                            ("fu_disable", {"unit": "int_alu"})):
            schedule = FaultSchedule((
                FaultEvent(cycle=10, kind=kind,
                           cluster=config.home_cluster, **extra),
            ))
            with pytest.raises(ConfigError, match="home cluster"):
                schedule.validate_for(config)

    def test_cluster_index_bounds(self):
        schedule = FaultSchedule((
            FaultEvent(cycle=10, kind="cluster_kill", cluster=16),
        ))
        with pytest.raises(ConfigError, match="16 clusters"):
            schedule.validate_for(default_config(16))

    def test_link_endpoint_bounds(self):
        schedule = FaultSchedule((
            FaultEvent(cycle=10, kind="link_sever", src=1, dst=99),
        ))
        with pytest.raises(ConfigError, match="exceed"):
            schedule.validate_for(default_config(16))

    def test_valid_schedule_passes(self):
        FaultSchedule((
            FaultEvent(cycle=10, kind="cluster_kill", cluster=5),
            FaultEvent(cycle=20, kind="link_degrade", src=1, dst=2),
        )).validate_for(default_config(16))


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self):
        schedule = FaultSchedule((
            FaultEvent(cycle=100, kind="cluster_kill", cluster=5),
            FaultEvent(cycle=150, kind="link_degrade", src=1, dst=2, factor=4),
            FaultEvent(cycle=200, kind="fu_disable", cluster=3,
                       unit="fp_mul"),
        ))
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_unknown_top_level_key_named(self):
        with pytest.raises(ConfigError, match="'efents'"):
            FaultSchedule.from_json('{"efents": []}')

    def test_unknown_event_key_named(self):
        with pytest.raises(ConfigError, match="'cylce'"):
            FaultSchedule.from_json(
                '{"events": [{"cylce": 5, "kind": "cluster_kill"}]}'
            )

    def test_non_object_payloads_rejected(self):
        with pytest.raises(ConfigError, match="must be an object"):
            FaultSchedule.from_json("[1, 2]")
        with pytest.raises(ConfigError, match="must be an object"):
            FaultSchedule.from_json('{"events": [5]}')

    def test_event_field_validation_still_applies(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultSchedule.from_json(
                '{"events": [{"cycle": 5, "kind": "gremlins"}]}'
            )


class TestSeeded:
    def test_deterministic_for_a_seed(self):
        kw = dict(cycles=10_000, num_clusters=16, faults=4,
                  kinds=("cluster", "fu"))
        assert FaultSchedule.seeded(7, **kw) == FaultSchedule.seeded(7, **kw)
        assert FaultSchedule.seeded(7, **kw) != FaultSchedule.seeded(8, **kw)

    def test_never_targets_home_cluster(self):
        for seed in range(20):
            schedule = FaultSchedule.seeded(
                seed, cycles=5_000, faults=4, home_cluster=0
            )
            for event in schedule.events:
                assert event.cluster != 0

    def test_kinds_draw_known_event_kinds(self):
        schedule = FaultSchedule.seeded(
            3, cycles=8_000, faults=6, kinds=("cluster", "fu", "link"),
            links=((1, 2), (2, 3)),
        )
        assert schedule
        for event in schedule.events:
            assert event.kind in FAULT_KINDS

    def test_link_family_requires_candidates(self):
        with pytest.raises(ConfigError, match="links="):
            FaultSchedule.seeded(1, cycles=5_000, kinds=("link",))

    def test_repair_after_pairs_restores(self):
        schedule = FaultSchedule.seeded(
            5, cycles=10_000, faults=3, kinds=("cluster",), repair_after=500
        )
        kills = [e for e in schedule.events if e.kind == "cluster_kill"]
        restores = [(e.cluster, e.cycle)
                    for e in schedule.events if e.kind == "cluster_restore"]
        assert len(kills) == len(restores)
        for kill in kills:
            assert (kill.cluster, kill.cycle + 500) in restores

    def test_window_bounds_fault_cycles(self):
        schedule = FaultSchedule.seeded(
            9, cycles=100_000, faults=5, kinds=("fu",), window=(400, 500)
        )
        for event in schedule.events:
            assert 400 <= event.cycle < 500

    def test_negative_faults_rejected(self):
        with pytest.raises(ConfigError, match=">= 0"):
            FaultSchedule.seeded(1, cycles=1_000, faults=-1)
