"""Conformance: every controller x topology survives a mid-run kill.

The whole matrix runs with ``REPRO_CHECK_INVARIANTS=1`` (armed for the
full suite by ``tests/conftest.py``), so a steering decision targeting a
dead cluster, a rate-invariant violation in a disabled cluster, or a
stale route table after a reroute fails here, not just a weaker IPC.
"""

import dataclasses

import pytest

from repro import simulate
from repro.resilience import FaultEvent, FaultSchedule

TOPOLOGIES = ("ring", "grid", "decentralized", "torus", "ring-of-rings")
POLICIES = ("none", "static-4", "explore", "no-explore", "finegrain")

#: a harsh mid-run sequence: kill, then wound the survivors
SCHEDULE = FaultSchedule((
    FaultEvent(cycle=600, kind="cluster_kill", cluster=5),
    FaultEvent(cycle=900, kind="fu_disable", cluster=2, unit="int_alu"),
    FaultEvent(cycle=1_200, kind="link_degrade", src=1, dst=2),
))


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("policy", POLICIES)
def test_survives_mid_run_kill(gzip_trace, topology, policy):
    result = simulate(
        gzip_trace,
        topology=topology,
        reconfig_policy=policy,
        warmup=500,
        faults=SCHEDULE,
    )
    assert result.stats.committed == len(gzip_trace.instructions)
    assert result.ipc > 0
    assert result.stats.faults_injected == len(SCHEDULE)
    assert result.stats.cluster_kills == 1
    assert result.stats.degraded_cycles > 0


class TestFaultedSweepBitIdentity:
    """Serial vs ``--jobs 4`` faulted sweeps must agree bit-for-bit."""

    def test_parallel_sweep_matches_serial(self):
        from repro.config import default_config, grid_config, torus_config
        from repro.experiments.sweep import (
            ControllerSpec,
            RunSpec,
            SweepConfig,
            SweepRunner,
            require_ok,
        )

        specs = [
            RunSpec(
                profile="gzip",
                trace_length=2_000,
                seed=11,
                config=make_config(16),
                controller=controller,
                warmup=300,
                faults=SCHEDULE,
                label=f"faulted/{make_config.__name__}",
            )
            for make_config in (default_config, grid_config, torus_config)
            for controller in (ControllerSpec.explore(),
                               ControllerSpec.static(16))
        ]
        serial = require_ok(SweepRunner(SweepConfig(jobs=1, use_cache=False)).run(specs))
        parallel = require_ok(SweepRunner(SweepConfig(jobs=4, use_cache=False)).run(specs))
        for one, four in zip(serial, parallel):
            assert one.spec.cache_key() == four.spec.cache_key()
            assert dataclasses.asdict(one.result.stats) == dataclasses.asdict(
                four.result.stats
            )
            assert one.result.stats.faults_injected == len(SCHEDULE)

    def test_faulted_run_has_distinct_cache_key(self):
        from repro.experiments.sweep import ControllerSpec, RunSpec

        base = dict(
            profile="gzip",
            trace_length=2_000,
            seed=11,
            controller=ControllerSpec.static(16),
        )
        healthy = RunSpec(**base)
        faulted = RunSpec(faults=SCHEDULE, **base)
        assert healthy.cache_key() != faulted.cache_key()
