"""Hypothesis property tests over random kill/restore sequences.

Two layers, one claim each:

* the multiprog ``ClusterLedger`` survives *any* interleaving of
  fail/restore/grant without leaking or double-counting a cluster, and
* a seeded random kill/restore schedule on the single-thread pipeline
  always completes the trace, counts its injections, and replays
  bit-identically (traced or not).

CI's chaos job runs these with ``REPRO_HYPOTHESIS_PROFILE=thorough`` on
pushes; PRs and local runs use the fast profile's smaller budget.
"""

import dataclasses
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import default_config, generate_trace, get_profile
from repro.errors import SimulationError
from repro.multiprog import ClusterLedger
from repro.multiprog.ledger import FAILED, FREE, OWNED
from repro.observability import MemoryTracer
from repro.pipeline.processor import ClusteredProcessor
from repro.resilience import FaultSchedule

settings.register_profile("fast", max_examples=10, deadline=None)
settings.register_profile("thorough", max_examples=75, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "fast"))

CLUSTERS = 6

#: one short trace shared by every example (hypothesis forbids
#: function-scoped fixtures; module scope is also simply faster)
TRACE = generate_trace(get_profile("gzip"), 2_000, seed=7)


@given(data=st.data())
def test_ledger_survives_any_fail_restore_grant_interleaving(data):
    """Conservation and state transitions hold under arbitrary sequences."""
    ledger = ClusterLedger(CLUSTERS)
    owned = {}  # cluster -> thread
    failed = set()
    cycle = 0
    for _ in range(data.draw(st.integers(1, 30), label="ops")):
        cycle += data.draw(st.integers(1, 20), label="dt")
        cluster = data.draw(st.integers(0, CLUSTERS - 1), label="cluster")
        op = data.draw(st.sampled_from(["fail", "restore", "grant"]),
                       label="op")
        if op == "fail":
            evicted = ledger.fail_cluster(cluster, cycle)
            if cluster in failed:
                assert evicted is None  # idempotent on a dead cluster
            else:
                assert evicted == owned.pop(cluster, None)
                failed.add(cluster)
        elif op == "restore":
            assert ledger.restore_cluster(cluster, cycle) == (
                cluster in failed
            )
            failed.discard(cluster)
        else:  # grant
            thread = data.draw(st.integers(0, 2), label="thread")
            if cluster in failed:
                with pytest.raises(SimulationError, match="dead"):
                    ledger.grant(cluster, thread, cycle)
            elif cluster in owned:
                with pytest.raises(SimulationError, match="double grant"):
                    ledger.grant(cluster, thread, cycle)
            else:
                ledger.grant(cluster, thread, cycle)
                owned[cluster] = thread
        # the ledger's view must match the model after every single op
        ledger.check_conservation(cycle)
        assert ledger.failed_clusters() == tuple(sorted(failed))
        for c in range(CLUSTERS):
            state = ledger.state(c, cycle)
            if c in failed:
                assert state == FAILED
            elif c in owned:
                assert state == OWNED
            else:
                assert state == FREE


@given(
    seed=st.integers(0, 2**32 - 1),
    faults=st.integers(1, 4),
    repair_after=st.sampled_from([0, 150, 300]),
)
def test_seeded_kill_restore_completes_and_replays(seed, faults,
                                                   repair_after):
    """Any seeded cluster kill/restore schedule degrades gracefully."""
    schedule = FaultSchedule.seeded(
        seed,
        cycles=2_000,
        faults=faults,
        kinds=("cluster",),
        repair_after=repair_after,
        window=(200, 900),  # all events fire well before the run ends
    )
    config = default_config(16)

    def run(tracer=None):
        proc = ClusteredProcessor(TRACE, config, None, tracer=tracer,
                                  fault_schedule=schedule)
        proc.run()
        return proc.stats

    baseline = run()
    assert baseline.committed == len(TRACE)
    if schedule:
        assert baseline.faults_injected >= 1
        assert baseline.cluster_kills >= 1
    # restores heal: a repaired machine spends no more degraded cycles
    # than the schedule's span allows
    if repair_after and schedule:
        assert baseline.degraded_cycles < baseline.cycles
    snapshot = dataclasses.asdict(baseline)
    assert dataclasses.asdict(run()) == snapshot
    assert dataclasses.asdict(run(MemoryTracer(sample_period=200))) == (
        snapshot
    )
