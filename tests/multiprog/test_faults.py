"""Multiprogrammed fault handling: the ledger's failed state and the
scheduler's kill/evict/emergency-grant machinery."""

import dataclasses

import pytest

from repro.errors import ConfigError, SimulationError
from repro.multiprog import ClusterLedger, MultiProgSpec, run_multiprog
from repro.multiprog.ledger import DRAINING, FAILED, FREE, OWNED
from repro.observability import MemoryTracer
from repro.resilience import FaultEvent, FaultSchedule


def kill(cycle, cluster):
    return FaultEvent(cycle=cycle, kind="cluster_kill", cluster=cluster)


def restore(cycle, cluster):
    return FaultEvent(cycle=cycle, kind="cluster_restore", cluster=cluster)


class TestSpecValidation:
    def test_only_cluster_kinds_allowed(self):
        for event in (
            FaultEvent(cycle=10, kind="link_sever", src=0, dst=1),
            FaultEvent(cycle=10, kind="fu_disable", cluster=1,
                       unit="int_alu"),
        ):
            with pytest.raises(ConfigError, match="cluster_kill"):
                MultiProgSpec(
                    workloads=("gzip", "swim"),
                    faults=FaultSchedule((event,)),
                )

    def test_cluster_bounds_checked(self):
        with pytest.raises(ConfigError, match="fabric has 4"):
            MultiProgSpec(
                workloads=("gzip", "swim"),
                clusters=4,
                faults=FaultSchedule((kill(10, 7),)),
            )

    def test_home_cluster_killable_in_multiprog(self):
        # no home protection here: losing cluster 0 is an ownership change
        MultiProgSpec(
            workloads=("gzip", "swim"),
            faults=FaultSchedule((kill(10, 0),)),
        )


class TestLedgerFailedState:
    def test_fail_evicts_owner_and_blocks_grants(self):
        ledger = ClusterLedger(4)
        ledger.grant(1, 0, 0)
        assert ledger.fail_cluster(1, 10) == 0
        assert ledger.state(1, 10) == FAILED
        assert ledger.failed_clusters() == (1,)
        assert 1 not in ledger.free_clusters(10)
        assert ledger.owned_by(0) == ()
        with pytest.raises(SimulationError, match="dead"):
            ledger.grant(1, 0, 20)
        ledger.check_conservation(20)

    def test_fail_is_idempotent(self):
        ledger = ClusterLedger(4)
        assert ledger.fail_cluster(2, 10) is None  # unowned: no eviction
        assert ledger.fail_cluster(2, 20) is None  # already failed
        assert ledger.failed_clusters() == (2,)

    def test_fail_interrupts_a_drain(self):
        ledger = ClusterLedger(4)
        ledger.grant(1, 0, 0)
        ledger.reclaim(1, 0, 10, 50)
        assert ledger.state(1, 20) == DRAINING
        ledger.fail_cluster(1, 20)
        assert ledger.state(1, 20) == FAILED
        ledger.check_conservation(20)

    def test_restore_reenters_free(self):
        ledger = ClusterLedger(4)
        ledger.fail_cluster(3, 10)
        assert ledger.restore_cluster(3, 20)
        assert ledger.state(3, 20) == FREE
        assert not ledger.restore_cluster(3, 30)  # not failed: no-op
        ledger.grant(3, 1, 40)
        assert ledger.state(3, 40) == OWNED

    def test_conservation_spans_all_four_states(self):
        ledger = ClusterLedger(6)
        ledger.grant(0, 0, 0)
        ledger.grant(1, 0, 0)
        ledger.reclaim(1, 0, 10, 100)   # draining
        ledger.fail_cluster(2, 10)      # failed
        ledger.check_conservation(50)   # owned=1 drain=1 failed=1 free=3


def faulted_spec(**overrides):
    base = dict(
        workloads=("gzip", "swim"),
        trace_length=1_500,
        seed=11,
        topology="ring",
        arbiter="round-robin",
        clusters=4,
        epoch_cycles=250,
        drain_cycles=20,
        faults=FaultSchedule((kill(600, 3),)),
    )
    base.update(overrides)
    return MultiProgSpec(**base)


class TestScheduler:
    @pytest.mark.parametrize("arbiter", ["static", "round-robin",
                                         "comm-aware"])
    def test_kill_mid_run_completes_and_counts(self, arbiter):
        result = run_multiprog(faulted_spec(arbiter=arbiter))
        assert all(t.committed > 0 for t in result.threads)
        assert result.stats.faults_injected == 1
        assert result.stats.cluster_kills == 1
        assert result.stats.degraded_cycles > 0
        # the dead cluster is out of the pool: the owned-cluster integral
        # from the kill onward can never include it
        total_owned = sum(t.stats.owned_cluster_cycles for t in result.threads)
        assert total_owned < 4 * result.cycles

    def test_restore_rejoins_the_pool(self):
        killed = run_multiprog(faulted_spec())
        repaired = run_multiprog(faulted_spec(
            faults=FaultSchedule((kill(600, 3), restore(900, 3)))
        ))
        assert repaired.stats.faults_injected == 2
        assert repaired.stats.degraded_cycles <= killed.stats.degraded_cycles

    def test_evicted_thread_gets_emergency_grant(self):
        # static arbiter on 2 threads x 4 clusters: thread 1 owns {2, 3};
        # killing both forces one emergency grant (a free cluster exists
        # only after the second kill steals from thread 0... so the first
        # kill's replacement comes from the free pool being empty -> donor
        # steal), and the run must still complete
        spec = faulted_spec(
            arbiter="static",
            faults=FaultSchedule((kill(600, 2), kill(700, 3))),
        )
        result = run_multiprog(spec)
        assert all(t.committed > 0 for t in result.threads)
        assert result.stats.cluster_kills == 2
        assert result.stats.arb_grants >= 1

    def test_more_threads_than_surviving_clusters_raises(self):
        spec = faulted_spec(
            workloads=("gzip", "swim", "mgrid"),
            clusters=3,
            faults=FaultSchedule((kill(400, 0), kill(500, 1))),
        )
        with pytest.raises(SimulationError, match="no donor"):
            run_multiprog(spec)

    def test_faulted_run_is_deterministic_and_tracer_passive(self):
        spec = faulted_spec(arbiter="comm-aware")
        baseline = run_multiprog(spec)
        again = run_multiprog(spec)
        traced = run_multiprog(spec, tracer=MemoryTracer(sample_period=100))
        for other in (again, traced):
            assert dataclasses.asdict(other.stats) == dataclasses.asdict(
                baseline.stats
            )
            assert other.cycles == baseline.cycles

    def test_fault_events_reach_the_trace(self):
        tracer = MemoryTracer(sample_period=0)
        run_multiprog(faulted_spec(), tracer=tracer)
        kinds = [e["kind"] for e in tracer.events]
        assert "fault_inject" in kinds
        assert "remap_start" in kinds
        assert "remap_done" in kinds
