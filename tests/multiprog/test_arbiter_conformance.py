"""Conformance suite: every arbiter x every fabric, same properties.

Any registered arbiter, on any registered fabric, must satisfy:

* **conservation** — after every rebalance, each cluster is in exactly
  one of owned/draining/free (the ledger raises on double grants and
  bad reclaims, so merely *replaying* arbitrary action sequences is the
  test);
* **sane actions** — grants only to unfinished threads, only of clusters
  that were actually free;
* **determinism** — ``rebalance`` is a pure function of its inputs, a
  full run is a pure function of its spec, ``--jobs 4`` sweeps are
  bit-identical to serial ones, and an attached tracer changes nothing.

The property tests are hypothesis-driven; CI's slow lane runs them with
a larger example budget via ``REPRO_HYPOTHESIS_PROFILE=thorough``.
"""

import dataclasses
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import InterconnectConfig
from repro.errors import SimulationError
from repro.interconnect import build_topology
from repro.multiprog import (
    ClusterLedger,
    FABRICS,
    MultiProgSpec,
    ThreadView,
    arbiter_names,
    build_arbiter,
    run_multiprog,
)
from repro.observability import MemoryTracer

settings.register_profile("fast", max_examples=15, deadline=None)
settings.register_profile("thorough", max_examples=150, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "fast"))

CLUSTERS = 16
DRAIN = 25
EPOCH = 100

#: the full conformance matrix; parametrize ids read "arbiter-fabric"
MATRIX = [
    pytest.param(arbiter, fabric, id=f"{arbiter}-{fabric}")
    for arbiter in arbiter_names()
    for fabric in FABRICS
]


def make_topology(fabric):
    return build_topology(InterconnectConfig(topology=fabric), CLUSTERS)


def replay(arbiter_name, fabric, num_threads, rounds, data):
    """Apply ``rounds`` epochs of synthetic progress; return the ledger.

    ``data`` drives which threads finish and how much each commits; every
    ledger mutation goes through grant/reclaim, which raise on any
    conservation violation — so simply finishing is most of the assertion.
    """
    arbiter = build_arbiter(
        arbiter_name, CLUSTERS, num_threads, make_topology(fabric)
    )
    ledger = ClusterLedger(CLUSTERS)
    blocks = arbiter.initial_allocation()
    assert len(blocks) == num_threads
    assert sorted(c for block in blocks for c in block) == list(range(CLUSTERS))
    for thread, block in enumerate(blocks):
        assert block, f"thread {thread} allocated no clusters"
        for cluster in block:
            ledger.grant(cluster, thread, 0)

    finished = [False] * num_threads
    committed = [0] * num_threads
    cycle = 0
    for _ in range(rounds):
        cycle += EPOCH
        deltas = [
            data.draw(st.integers(min_value=0, max_value=500), label="delta")
            for _ in range(num_threads)
        ]
        for thread in range(num_threads):
            if not finished[thread]:
                committed[thread] += deltas[thread]
                if data.draw(st.booleans(), label="finish"):
                    finished[thread] = True
        views = [
            ThreadView(
                index=thread,
                finished=finished[thread],
                owned=ledger.owned_by(thread),
                committed=committed[thread],
                epoch_committed=deltas[thread],
            )
            for thread in range(num_threads)
        ]
        free_before = ledger.free_clusters(cycle)
        actions = arbiter.rebalance(views, free_before, cycle)
        # determinism: same inputs, same decisions
        assert actions == arbiter.rebalance(views, free_before, cycle)
        for kind, thread, cluster in actions:
            if kind == "grant":
                assert not finished[thread], "grant to a finished thread"
                assert cluster in free_before, "grant of a non-free cluster"
                ledger.grant(cluster, thread, cycle)
            elif kind == "reclaim":
                ledger.reclaim(cluster, thread, cycle, DRAIN)
            else:  # pragma: no cover - would be an arbiter bug
                raise AssertionError(f"unknown action kind {kind!r}")
        ledger.check_conservation(cycle)
        # exclusivity: the per-thread owned sets partition the owned pool
        all_owned = [c for t in range(num_threads) for c in ledger.owned_by(t)]
        assert len(all_owned) == len(set(all_owned)), "cluster owned twice"
    return ledger


@pytest.mark.parametrize("arbiter_name,fabric", MATRIX)
@given(data=st.data())
def test_arbitrary_progress_conserves_clusters(arbiter_name, fabric, data):
    num_threads = data.draw(st.integers(min_value=2, max_value=4), label="n")
    rounds = data.draw(st.integers(min_value=1, max_value=8), label="rounds")
    replay(arbiter_name, fabric, num_threads, rounds, data)


@pytest.mark.parametrize("arbiter_name,fabric", MATRIX)
def test_double_grant_is_rejected(arbiter_name, fabric):
    """The ledger (not arbiter goodwill) enforces exclusivity."""
    arbiter = build_arbiter(arbiter_name, CLUSTERS, 2, make_topology(fabric))
    ledger = ClusterLedger(CLUSTERS)
    for thread, block in enumerate(arbiter.initial_allocation()):
        for cluster in block:
            ledger.grant(cluster, thread, 0)
    with pytest.raises(SimulationError, match="double grant"):
        ledger.grant(0, 1, 10)
    ledger.reclaim(0, 0, 10, DRAIN)
    with pytest.raises(SimulationError, match="draining"):
        ledger.grant(0, 1, 10 + DRAIN - 1)
    ledger.grant(0, 1, 10 + DRAIN)  # after the drain it is grantable


class TestEndToEnd:
    """Full co-scheduled runs across the whole matrix."""

    @staticmethod
    def spec(arbiter, fabric, **overrides):
        base = dict(
            workloads=("gzip", "swim"),
            trace_length=1_500,
            seed=11,
            topology=fabric,
            arbiter=arbiter,
            epoch_cycles=250,
            drain_cycles=20,
        )
        base.update(overrides)
        return MultiProgSpec(**base)

    @pytest.mark.parametrize("arbiter_name,fabric", MATRIX)
    def test_run_completes_and_accounts(self, arbiter_name, fabric):
        result = run_multiprog(self.spec(arbiter_name, fabric))
        assert result.cycles > 0
        for thread in result.threads:
            assert thread.committed > 0
            assert thread.cycles <= result.cycles
        # the owned-cluster integral can never exceed the physical pool
        total_owned = sum(t.stats.owned_cluster_cycles for t in result.threads)
        assert total_owned <= CLUSTERS * result.cycles
        assert result.stats.arb_grants == result.arb_grants
        assert result.stats.arb_reclaims == result.arb_reclaims
        if arbiter_name == "static":
            assert result.arb_grants == 0 and result.arb_reclaims == 0

    @pytest.mark.parametrize("arbiter_name,fabric", MATRIX)
    def test_traced_run_is_bit_identical(self, arbiter_name, fabric):
        spec = self.spec(arbiter_name, fabric)
        baseline = run_multiprog(spec)
        traced = run_multiprog(spec, tracer=MemoryTracer(sample_period=100))
        assert dataclasses.asdict(traced.stats) == dataclasses.asdict(
            baseline.stats
        )
        assert traced.cycles == baseline.cycles
        assert [t.ipc for t in traced.threads] == [
            t.ipc for t in baseline.threads
        ]

    def test_rerun_is_deterministic(self):
        spec = self.spec("round-robin", "torus")
        first = run_multiprog(spec)
        second = run_multiprog(spec)
        assert dataclasses.asdict(first.stats) == dataclasses.asdict(
            second.stats
        )
        assert first.cycles == second.cycles


class TestSweepBitIdentity:
    """Serial vs ``jobs=4`` sweeps must agree bit-for-bit."""

    def test_parallel_sweep_matches_serial(self):
        from repro.experiments.sweep import (
            SweepConfig,
            SweepRunner,
            multiprog_run_spec,
            require_ok,
        )

        specs = [
            multiprog_run_spec(TestEndToEnd.spec(arbiter, fabric))
            for arbiter in arbiter_names()
            for fabric in FABRICS
        ]
        serial = require_ok(SweepRunner(SweepConfig(jobs=1, use_cache=False)).run(specs))
        parallel = require_ok(SweepRunner(SweepConfig(jobs=4, use_cache=False)).run(specs))
        for one, four in zip(serial, parallel):
            assert one.spec.cache_key() == four.spec.cache_key()
            assert one.result.ipc == four.result.ipc
            assert one.result.committed == four.result.committed
            assert one.result.cycles == four.result.cycles
            assert dataclasses.asdict(one.result.stats) == dataclasses.asdict(
                four.result.stats
            )
