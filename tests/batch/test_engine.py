"""BatchEngine lockstep semantics: bit-identity, retirement, refill.

The engine's one promise is that lockstep interleaving is invisible:
every member retires with exactly the result :func:`run_trace` produces
for the same job, whatever the batch size, quantum, or submission order.
The property test drives that promise through randomized compositions;
the rest of the file pins the lifecycle edges (mid-batch retirement and
back-fill, construction failures, cooperative timeouts, cancellation).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchEngine, BatchJob
from repro.config import (
    decentralized_config,
    default_config,
    grid_config,
    torus_config,
)
from repro.errors import SimulationError
from repro.experiments.runner import run_trace
from repro.experiments.sweep import ControllerSpec
from repro.workloads import generate_trace, get_profile

LEN = 1_200
WARMUP = 300

_CONFIGS = {
    "ring": default_config,
    "grid": grid_config,
    "torus": torus_config,
    "decentralized": decentralized_config,
}

#: the job mix every composition test draws from: all four topologies,
#: static/dynamic controllers, two benchmarks, one short-trace member
CASES = (
    ("vpr-ring-static2", "vpr", "ring", ControllerSpec.static(2), LEN),
    ("gzip-grid-static4", "gzip", "grid", ControllerSpec.static(4), LEN),
    ("swim-torus-explore", "swim", "torus", ControllerSpec.explore(), LEN),
    ("parser-dec-none", "parser", "decentralized", ControllerSpec.none(), LEN),
    ("crafty-ring-fine", "crafty", "ring", ControllerSpec.finegrain(), LEN),
    ("gzip-ring-short", "gzip", "ring", ControllerSpec.static(4), 600),
)


def _trace(profile, length, seed=7):
    return generate_trace(get_profile(profile), length, seed)


def _job(case):
    _, profile, topology, controller, length = case
    return BatchJob(
        trace=_trace(profile, length),
        config=_CONFIGS[topology](16),
        controller=controller.build(),
        warmup=WARMUP,
        label=case[0],
    )


def _serial(case):
    _, profile, topology, controller, length = case
    return run_trace(
        _trace(profile, length),
        _CONFIGS[topology](16),
        controller.build(),
        warmup=WARMUP,
    )


@pytest.fixture(scope="module")
def reference():
    """run_trace's answer for every case, keyed by case name."""
    return {case[0]: _serial(case) for case in CASES}


def _stats_dict(result):
    return dataclasses.asdict(result.stats)


def _assert_matches(outcome, reference):
    assert outcome.ok, (outcome.key, outcome.error)
    expected = reference[outcome.key]
    got = outcome.result
    assert _stats_dict(got) == _stats_dict(expected)
    assert got.ipc == expected.ipc
    assert got.cycles == expected.cycles
    assert got.committed == expected.committed
    assert got.mispredict_interval == expected.mispredict_interval
    assert got.avg_active_clusters == expected.avg_active_clusters
    assert got.reconfigurations == expected.reconfigurations


class TestBitIdentity:
    def test_full_mix_one_batch(self, reference):
        engine = BatchEngine(batch_size=len(CASES))
        for case in CASES:
            engine.submit(case[0], _job(case))
        outcomes = list(engine.run())
        assert len(outcomes) == len(CASES)
        for outcome in outcomes:
            _assert_matches(outcome, reference)

    @settings(max_examples=10, deadline=None)
    @given(
        batch_size=st.integers(min_value=1, max_value=len(CASES)),
        quantum=st.sampled_from([64, 500, 2048, 1 << 16]),
        order=st.permutations(range(len(CASES))),
    )
    def test_composition_never_changes_results(
        self, reference, batch_size, quantum, order
    ):
        """The promise: results are invariant to batch size, quantum,
        and submission order."""
        engine = BatchEngine(batch_size=batch_size, quantum=quantum)
        for i in order:
            engine.submit(CASES[i][0], _job(CASES[i]))
        outcomes = {o.key: o for o in engine.run()}
        assert set(outcomes) == {case[0] for case in CASES}
        for outcome in outcomes.values():
            _assert_matches(outcome, reference)

    def test_max_instructions_honoured(self):
        case = CASES[1]
        job = _job(case)
        job.max_instructions = 800
        engine = BatchEngine(batch_size=2)
        engine.submit("bounded", job)
        [outcome] = list(engine.run())
        expected = run_trace(
            _trace(case[1], case[4]),
            _CONFIGS[case[2]](16),
            case[3].build(),
            warmup=WARMUP,
            max_instructions=800,
        )
        assert outcome.ok
        assert _stats_dict(outcome.result) == _stats_dict(expected)


class TestRetirementAndRefill:
    def test_batch_stays_full_until_queue_drains(self, reference):
        """A slot freed by retirement is back-filled the same round."""
        engine = BatchEngine(batch_size=2, quantum=256)
        for case in CASES:
            engine.submit(case[0], _job(case))
        outcomes = []
        while engine.outstanding:
            before = engine.active_count
            round_outcomes = engine.step_round()
            outcomes.extend(round_outcomes)
            assert before <= 2
            # full while work remains: pending jobs must top the batch up
            if engine.outstanding:
                assert engine.active_count == min(2, engine.outstanding)
        assert engine.active_count == 0
        assert engine.retired_count == len(CASES)
        assert len(outcomes) == len(CASES)
        for outcome in outcomes:
            _assert_matches(outcome, reference)

    def test_short_member_retires_first(self):
        """A 600-instruction member must not wait for a 1200-one."""
        engine = BatchEngine(batch_size=2, quantum=256)
        engine.submit("long", _job(CASES[0]))
        engine.submit("short", _job(CASES[5]))
        order = [outcome.key for outcome in engine.run()]
        assert order.index("short") < order.index("long")

    def test_warmup_clamp_on_tiny_trace(self):
        """warmup > len(trace) - 1000 is clamped exactly like run_trace."""
        trace = _trace("gzip", 500)
        config = default_config(16)
        job = BatchJob(trace=trace, config=config,
                       controller=ControllerSpec.static(4).build(),
                       warmup=6_000)
        engine = BatchEngine(batch_size=1)
        engine.submit("tiny", job)
        [outcome] = list(engine.run())
        expected = run_trace(trace, config,
                             ControllerSpec.static(4).build(), warmup=6_000)
        assert outcome.ok
        assert _stats_dict(outcome.result) == _stats_dict(expected)


class TestLifecycleEdges:
    def test_construction_error_is_an_outcome(self, reference):
        """A job that cannot build a processor retires as an error
        outcome without disturbing its batchmates."""
        engine = BatchEngine(batch_size=3)
        engine.submit("good", _job(CASES[0]))
        engine.submit("bad", BatchJob(trace=None, config=default_config(16)))
        engine.submit("also-good", _job(CASES[1]))
        outcomes = {o.key: o for o in engine.run()}
        assert not outcomes["bad"].ok
        assert isinstance(outcomes["bad"].error, Exception)
        assert outcomes["good"].ok and outcomes["also-good"].ok
        assert _stats_dict(outcomes["good"].result) == _stats_dict(
            reference[CASES[0][0]]
        )

    def test_cooperative_timeout(self):
        """timeout=0 bills every member out after its first round."""
        engine = BatchEngine(batch_size=2, quantum=64, timeout=0.0)
        engine.submit("a", _job(CASES[0]))
        engine.submit("b", _job(CASES[1]))
        outcomes = list(engine.run())
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert outcome.timed_out and not outcome.ok
            assert outcome.elapsed > 0.0

    def test_timeout_spares_fast_members(self, reference):
        """A generous timeout retires real results, not timeouts."""
        engine = BatchEngine(batch_size=2, timeout=120.0)
        engine.submit(CASES[0][0], _job(CASES[0]))
        [outcome] = list(engine.run())
        assert outcome.ok and not outcome.timed_out
        _assert_matches(outcome, reference)

    def test_cancel_pending_keeps_live_members(self):
        engine = BatchEngine(batch_size=1, quantum=64)
        for case in CASES[:3]:
            engine.submit(case[0], _job(case))
        engine.step_round()  # admits exactly one live member
        dropped = engine.cancel_pending()
        assert [key for key, _ in dropped] == [CASES[1][0], CASES[2][0]]
        outcomes = list(engine.run())
        assert [o.key for o in outcomes] == [CASES[0][0]]
        assert outcomes[0].ok

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BatchEngine(batch_size=0)
        with pytest.raises(ValueError):
            BatchEngine(quantum=0)


class TestFusedCoreGuards:
    def test_naive_issue_rejected(self):
        """The fused loop transcribes the event-driven issue stage only;
        the naive oracle must be refused, not silently mis-run."""
        from repro.batch import FusedCore
        from repro.pipeline.processor import ClusteredProcessor

        processor = ClusteredProcessor(
            _trace("gzip", 600), default_config(16), None, naive_issue=True
        )
        with pytest.raises(SimulationError, match="naive_issue"):
            FusedCore(processor)
