"""Everything the sweep engine ships across process boundaries must pickle.

``SweepRunner`` sends ``RunSpec`` objects to worker processes and receives
``RunRecord`` objects back; the result cache pickles records to disk.  A
single non-picklable attribute anywhere in that object graph breaks the
parallel path with an opaque ``PicklingError`` — so every participating
type gets an explicit round-trip test here.
"""

import pickle

import pytest

from repro.config import (
    decentralized_config,
    default_config,
    grid_config,
    monolithic_config,
)
from repro.experiments.runner import run_trace
from repro.experiments.sweep import ControllerSpec, RunSpec, execute_spec
from repro.experiments.timeline import Reconfiguration, TimelineRecorder
from repro.stats import SimStats
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile

LEN = 2_000


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestConfigs:
    @pytest.mark.parametrize(
        "config",
        [
            default_config(16),
            decentralized_config(16),
            monolithic_config(),
            grid_config(16),
        ],
        ids=["default", "decentralized", "monolithic", "grid"],
    )
    def test_config_roundtrip(self, config):
        assert roundtrip(config) == config


class TestControllers:
    SPECS = [
        ControllerSpec.none(),
        ControllerSpec.static(4),
        ControllerSpec.explore(),
        ControllerSpec.no_explore(),
        ControllerSpec.finegrain(),
        ControllerSpec.subroutine(),
    ]

    @pytest.mark.parametrize("spec", SPECS, ids=[s.kind for s in SPECS])
    def test_spec_and_built_controller_roundtrip(self, spec):
        assert roundtrip(spec) == spec
        controller = spec.build()
        clone = roundtrip(controller)
        assert type(clone) is type(controller)


class TestWorkloads:
    def test_profile_roundtrip(self):
        profile = get_profile("gzip")
        assert roundtrip(profile) == profile

    def test_trace_roundtrip(self):
        trace = generate_trace(get_profile("gzip"), LEN, seed=7)
        clone = roundtrip(trace)
        assert len(clone) == len(trace)
        first, cloned = trace.instructions[0], clone.instructions[0]
        assert (first.op, first.src1, first.src2) == (
            cloned.op,
            cloned.src1,
            cloned.src2,
        )


class TestResults:
    def test_simstats_roundtrip(self):
        stats = SimStats(cycles=100, committed=250, mispredicts=3)
        assert roundtrip(stats).snapshot() == stats.snapshot()

    def test_run_result_roundtrip(self):
        trace = generate_trace(get_profile("gzip"), LEN, seed=7)
        result = run_trace(trace, default_config(16), warmup=500, label="pkl")
        clone = roundtrip(result)
        assert clone.ipc == result.ipc
        assert clone.stats.snapshot() == result.stats.snapshot()

    def test_attached_timeline_recorder_roundtrip(self):
        """The recorder (and its proxy) must survive pickling even while
        attached to a live processor — workers build this exact object."""
        trace = generate_trace(get_profile("swim"), LEN, seed=7)
        recorder = TimelineRecorder(ControllerSpec.explore().build())
        result = run_trace(trace, default_config(16), recorder, warmup=500)
        assert result.committed > 0
        clone = roundtrip(recorder)
        assert clone.events == recorder.events
        assert type(clone.inner) is type(recorder.inner)

    def test_reconfiguration_event_roundtrip(self):
        event = Reconfiguration(cycle=10, committed=5, clusters=8)
        assert roundtrip(event) == event


class TestSweepTypes:
    def test_run_spec_roundtrip(self):
        spec = RunSpec(
            profile="gzip",
            trace_length=LEN,
            config=default_config(16),
            controller=ControllerSpec.no_explore(),
            steering=("mod-n", 3),
            label="pkl",
        )
        clone = roundtrip(spec)
        assert clone == spec
        assert clone.cache_key() == spec.cache_key()

    def test_run_record_roundtrip(self):
        spec = RunSpec(
            profile="gzip",
            trace_length=LEN,
            config=default_config(16),
            controller=ControllerSpec.explore(),
        )
        record = execute_spec(spec)
        assert record.ok
        clone = roundtrip(record)
        assert clone.status == "ok"
        assert clone.result.stats.snapshot() == record.result.stats.snapshot()
        assert clone.events == record.events

    def test_failed_record_roundtrip(self):
        record = execute_spec(RunSpec(profile="not-a-benchmark", trace_length=LEN))
        assert record.status == "failed"
        clone = roundtrip(record)
        assert clone.error == record.error
