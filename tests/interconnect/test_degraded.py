"""DegradedTopology: rerouting around severed links, partition errors."""

import pytest

from repro.config import InterconnectConfig
from repro.errors import ConfigError, UnreachableCluster
from repro.interconnect import build_topology
from repro.interconnect.degraded import DegradedTopology
from repro.interconnect.network import Network


def ring(n=8):
    return build_topology(InterconnectConfig(topology="ring"), n)


def wire_ids(topology, src, dst):
    return sorted(
        link
        for link, ends in topology.link_endpoints().items()
        if ends in ((src, dst), (dst, src))
    )


class TestRerouting:
    def test_severed_wire_routes_the_long_way(self):
        base = ring(8)
        degraded = DegradedTopology(base, set(wire_ids(base, 0, 1)))
        # 0 -> 1 now goes all the way round: seven hops instead of one
        assert base.hops(0, 1) == 1
        assert len(degraded.route(0, 1)) == 7
        # untouched pairs keep shortest paths
        assert len(degraded.route(2, 4)) == 2

    def test_link_id_space_preserved(self):
        base = ring(8)
        dead = set(wire_ids(base, 0, 1))
        degraded = DegradedTopology(base, dead)
        assert degraded.num_links == base.num_links
        assert set(degraded.link_endpoints()) == (
            set(base.link_endpoints()) - dead
        )
        for path in (degraded.route(s, d)
                     for s in range(8) for d in range(8) if s != d):
            assert not set(path) & dead, "route crosses a severed link"

    def test_self_route_is_empty(self):
        degraded = DegradedTopology(ring(8), set())
        assert degraded.route(3, 3) == ()

    def test_deterministic_ties(self):
        base = ring(8)
        first = DegradedTopology(base, set(wire_ids(base, 2, 3)))
        second = DegradedTopology(base, set(wire_ids(base, 2, 3)))
        for src in range(8):
            for dst in range(8):
                if src != dst:
                    assert first.route(src, dst) == second.route(src, dst)


class TestPartition:
    def test_isolated_node_raises(self):
        base = ring(4)
        dead = set(wire_ids(base, 0, 1)) | set(wire_ids(base, 1, 2))
        degraded = DegradedTopology(base, dead)
        with pytest.raises(UnreachableCluster, match="partitioned"):
            degraded.route(0, 1)
        # the surviving component still routes
        assert degraded.route(0, 2)


class TestNetworkFaultState:
    def make(self, topology="ring", n=8):
        return Network(InterconnectConfig(topology=topology), n)

    def test_sever_and_restore_round_trip(self):
        net = self.make()
        healthy = net.uncontended_latency(0, 1)
        assert net.sever_link(0, 1)
        assert net.is_degraded
        assert isinstance(net.topology, DegradedTopology)
        assert net.uncontended_latency(0, 1) > healthy
        assert not net.sever_link(0, 1)  # idempotent
        assert net.restore_link(0, 1)
        assert not net.is_degraded
        assert net.uncontended_latency(0, 1) == healthy

    def test_degrade_multiplies_latency(self):
        net = self.make()
        healthy = net.uncontended_latency(0, 1)
        assert net.degrade_link(0, 1, factor=4)
        assert net.uncontended_latency(0, 1) == healthy * 4
        # other links unaffected
        assert net.uncontended_latency(2, 3) == healthy
        assert not net.degrade_link(0, 1, factor=4)  # same factor: no-op

    def test_require_link_rejects_non_neighbours(self):
        net = self.make()
        net.require_link(0, 1)
        with pytest.raises(ConfigError, match="physical neighbours"):
            net.require_link(0, 4)

    def test_transfer_pays_degraded_cost(self):
        fast = self.make()
        slow = self.make()
        slow.degrade_link(0, 1, factor=8)
        assert slow.transfer(0, 1, 0) > fast.transfer(0, 1, 0)
