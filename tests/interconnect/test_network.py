"""Contention-aware network model."""

from repro.config import InterconnectConfig
from repro.interconnect.network import Network, build_topology
from repro.interconnect.grid import GridTopology
from repro.interconnect.ring import RingTopology
from repro.stats import SimStats


def _net(**kw):
    return Network(InterconnectConfig(**kw), 16, SimStats())


class TestFactory:
    def test_ring(self):
        assert isinstance(build_topology(InterconnectConfig(topology="ring"), 8), RingTopology)

    def test_grid(self):
        assert isinstance(build_topology(InterconnectConfig(topology="grid"), 16), GridTopology)


class TestLatency:
    def test_local_transfer_free(self):
        net = _net()
        assert net.transfer(3, 3, 100) == 100

    def test_uncontended_latency_is_hops(self):
        net = _net(model_contention=False)
        assert net.transfer(0, 4, 10) == 14
        assert net.transfer(0, 15, 10) == 11  # 1 hop around the ring

    def test_hop_latency_scales(self):
        net = _net(model_contention=False, hop_latency=2)
        assert net.transfer(0, 4, 10) == 18

    def test_contended_at_least_uncontended(self):
        net = _net()
        for d in range(1, 16):
            assert net.transfer(0, d, 5) >= 5 + net.uncontended_latency(0, d)


class TestContention:
    def test_same_link_same_cycle_serializes(self):
        net = _net()
        a = net.transfer(0, 1, 10)
        b = net.transfer(0, 1, 10)
        assert a == 11
        assert b == 12  # second transfer waits one cycle for the link

    def test_different_links_independent(self):
        net = _net()
        a = net.transfer(0, 1, 10)
        b = net.transfer(5, 6, 10)
        assert a == b == 11

    def test_out_of_order_requests_fill_gaps(self):
        """A far-future booking must not starve earlier cycles."""
        net = _net()
        late = net.transfer(0, 1, 1000)
        early = net.transfer(0, 1, 10)
        assert late == 1001
        assert early == 11

    def test_reset_contention(self):
        net = _net()
        net.transfer(0, 1, 10)
        net.reset_contention()
        assert net.transfer(0, 1, 10) == 11

    def test_bandwidth_two_allows_pairs(self):
        net = _net(link_bandwidth=2)
        assert net.transfer(0, 1, 10) == 11
        assert net.transfer(0, 1, 10) == 11
        assert net.transfer(0, 1, 10) == 12


class TestIdealization:
    def test_free_memory_communication(self):
        net = _net(free_memory_communication=True)
        assert net.transfer(0, 8, 10, kind="memory") == 10
        assert net.transfer(0, 8, 10, kind="register") > 10

    def test_free_register_communication(self):
        net = _net(free_register_communication=True)
        assert net.transfer(0, 8, 10, kind="register") == 10
        assert net.transfer(0, 8, 10, kind="memory") > 10


class TestStats:
    def test_register_transfer_accounting(self):
        stats = SimStats()
        net = Network(InterconnectConfig(), 16, stats)
        net.transfer(0, 4, 10, kind="register")
        assert stats.register_transfers == 1
        assert stats.register_transfer_cycles == 4

    def test_memory_transfer_accounting(self):
        stats = SimStats()
        net = Network(InterconnectConfig(), 16, stats)
        net.transfer(0, 2, 10, kind="memory")
        assert stats.memory_transfers == 1
        assert stats.memory_transfer_cycles == 2

    def test_local_transfers_not_counted(self):
        stats = SimStats()
        net = Network(InterconnectConfig(), 16, stats)
        net.transfer(5, 5, 10)
        assert stats.register_transfers == 0


class TestBroadcast:
    def test_broadcast_reaches_all(self):
        net = _net(model_contention=False)
        worst = net.broadcast(0, 10, kind="memory")
        assert worst == 10 + 8  # ring diameter

    def test_broadcast_counts_transfers(self):
        stats = SimStats()
        net = Network(InterconnectConfig(), 16, stats)
        net.broadcast(0, 10, kind="memory")
        assert stats.memory_transfers == 15
