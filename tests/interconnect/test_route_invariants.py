"""Route-table integrity: the new fabrics, and proof the checker bites.

The torus and ring-of-rings bring wraparound links and hub indirection —
exactly the wiring classes where an off-by-one builds a *plausible* but
wrong route table.  The positive half walks every route of every
topology against ``link_endpoints()``; the negative half arms the
``scramble_topology`` fault (:mod:`repro.faults`) and proves a full
simulation with invariant checking on reports the corruption as a
:class:`~repro.errors.SimulationError` instead of committing statistics.
"""

import pytest

from repro.config import InterconnectConfig
from repro.errors import SimulationError
from repro.interconnect import (
    GridTopology,
    HierRingTopology,
    RingTopology,
    TorusTopology,
    build_topology,
)
from repro.faults import FaultPlan, clear_fault_plan, set_fault_plan

ALL_TOPOLOGIES = ("ring", "grid", "torus", "ring-of-rings")


def walk(topology):
    """Assert every route is a connected link chain of the right length."""
    endpoints = topology.link_endpoints()
    for src in range(topology.num_nodes):
        for dst in range(topology.num_nodes):
            route = list(topology.route(src, dst))
            at = src
            for link in route:
                head, tail = endpoints[link]
                assert head == at, (src, dst, link)
                at = tail
            assert at == dst, (src, dst)
            assert len(route) == topology.hops(src, dst), (src, dst)


@pytest.mark.parametrize("name", ALL_TOPOLOGIES)
@pytest.mark.parametrize("nodes", (4, 8, 16))
def test_every_route_is_a_connected_chain(name, nodes):
    walk(build_topology(InterconnectConfig(topology=name), nodes))


def test_link_endpoints_cover_every_link():
    for topology in (
        RingTopology(16),
        GridTopology(16),
        TorusTopology(16),
        HierRingTopology(16),
    ):
        endpoints = topology.link_endpoints()
        assert sorted(endpoints) == list(range(topology.num_links))
        for link, (head, tail) in endpoints.items():
            assert head != tail, link
            assert 0 <= head < topology.num_nodes
            assert 0 <= tail < topology.num_nodes


class TestTorusShape:
    def test_wraparound_shortens_edges(self):
        torus, grid = TorusTopology(16), GridTopology(16)
        # corner to corner: 6 grid hops, 2 torus hops via the wrap links
        assert grid.hops(0, 15) == 6
        assert torus.hops(0, 15) == 2
        assert torus.max_hops() == 4

    def test_link_count(self):
        # 4x4: every node has 4 outgoing links (wrap included)
        assert TorusTopology(16).num_links == 64


class TestHierRingShape:
    def test_hub_indirection(self):
        hr = HierRingTopology(16)
        # cross-group traffic must transit both hubs (nodes 0,4,8,12)
        assert hr.max_hops() == 6
        assert hr.num_links == 40

    def test_local_traffic_stays_local(self):
        hr = HierRingTopology(16)
        # within a group of 4, the worst case is the 2-hop half-ring
        for base in (0, 4, 8, 12):
            for a in range(base, base + 4):
                for b in range(base, base + 4):
                    assert hr.hops(a, b) <= 2


class TestScrambledTopologyIsCaught:
    """A deliberately miswired fabric must fail loudly, not plausibly."""

    @pytest.fixture(autouse=True)
    def armed_plan(self):
        set_fault_plan(FaultPlan(scramble_topology=True))
        yield
        clear_fault_plan()

    @pytest.mark.parametrize("name", ("torus", "ring-of-rings", "grid"))
    def test_invariant_checker_reports_broken_routes(self, name):
        from repro import simulate

        with pytest.raises(SimulationError, match=r"\[topology\]"):
            simulate("gzip", trace_length=2_000, topology=name)

    def test_walk_detects_truncation_directly(self):
        topology = build_topology(InterconnectConfig(topology="torus"), 16)
        with pytest.raises(AssertionError):
            walk(topology)
