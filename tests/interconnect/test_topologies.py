"""Ring and grid topologies: link counts, distances, routing."""

import pytest

from repro.interconnect.grid import GridTopology
from repro.interconnect.ring import RingTopology


class TestRing:
    def test_paper_link_count(self):
        """Section 2.3: a 16-cluster system has 32 total links."""
        assert RingTopology(16).num_links == 32

    def test_paper_max_hops(self):
        """Section 2.3: maximum number of hops between nodes is 8."""
        assert RingTopology(16).max_hops() == 8

    def test_hops_symmetric(self):
        ring = RingTopology(16)
        for s in range(16):
            for d in range(16):
                assert ring.hops(s, d) == ring.hops(d, s)

    def test_self_distance_zero(self):
        ring = RingTopology(8)
        assert all(ring.hops(i, i) == 0 for i in range(8))
        assert all(ring.route(i, i) == () for i in range(8))

    def test_shortest_direction(self):
        ring = RingTopology(16)
        assert ring.hops(0, 1) == 1
        assert ring.hops(0, 15) == 1
        assert ring.hops(0, 8) == 8

    def test_route_length_matches_hops(self):
        ring = RingTopology(16)
        for s in range(16):
            for d in range(16):
                assert len(ring.route(s, d)) == ring.hops(s, d)

    def test_route_uses_valid_link_ids(self):
        ring = RingTopology(8)
        for s in range(8):
            for d in range(8):
                for link in ring.route(s, d):
                    assert 0 <= link < ring.num_links

    def test_cw_and_ccw_links_distinct(self):
        ring = RingTopology(4)
        cw = ring.route(0, 1)
        ccw = ring.route(1, 0)
        assert set(cw).isdisjoint(set(ccw))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RingTopology(4).route(0, 5)


class TestGrid:
    def test_paper_link_count(self):
        """Section 2.3: 16 clusters in a grid have 48 total links."""
        assert GridTopology(16).num_links == 48

    def test_paper_max_hops(self):
        """Section 2.3: grid maximum hops is 6."""
        assert GridTopology(16).max_hops() == 6

    def test_manhattan_distance(self):
        grid = GridTopology(16)  # 4x4
        assert grid.hops(0, 15) == 6
        assert grid.hops(0, 3) == 3
        assert grid.hops(0, 12) == 3
        assert grid.hops(5, 6) == 1

    def test_route_length_matches_hops(self):
        grid = GridTopology(16)
        for s in range(16):
            for d in range(16):
                assert len(grid.route(s, d)) == grid.hops(s, d)

    def test_xy_routing_goes_x_first(self):
        grid = GridTopology(16)
        # 0 -> 5: X to column 1 (node 1), then Y to node 5
        route = grid.route(0, 5)
        assert len(route) == 2

    def test_non_square_grid(self):
        grid = GridTopology(8)  # falls back to a 2-row arrangement
        assert grid.rows * grid.cols == 8
        assert grid.max_hops() < 8

    def test_rejects_impossible_columns(self):
        with pytest.raises(ValueError):
            GridTopology(10, cols=4)

    def test_grid_beats_ring_on_diameter(self):
        """The motivation for the grid in Section 6: better connectivity."""
        assert GridTopology(16).max_hops() < RingTopology(16).max_hops()
