"""Memory-system facades: centralized and decentralized timing paths."""

import pytest

from repro.config import decentralized_config, default_config
from repro.errors import ConfigError
from repro.interconnect.network import Network
from repro.memory.hierarchy import (
    CentralizedMemory,
    DecentralizedMemory,
    build_memory,
)
from repro.stats import SimStats
from repro.workloads.instruction import Instr, OpClass


def _central(num_clusters=16):
    config = default_config(num_clusters)
    stats = SimStats()
    net = Network(config.interconnect, num_clusters, stats)
    return CentralizedMemory(config, net, stats), stats


def _decentral(num_clusters=16):
    config = decentralized_config(num_clusters)
    stats = SimStats()
    net = Network(config.interconnect, num_clusters, stats)
    return DecentralizedMemory(config, net, stats), stats


def _ld(index, addr):
    return Instr(index, 0x40 + 4 * index, OpClass.LOAD, addr=addr)


def _st(index, addr):
    return Instr(index, 0x40 + 4 * index, OpClass.STORE, addr=addr)


class TestFactory:
    def test_builds_matching_type(self):
        config = default_config(4)
        stats = SimStats()
        net = Network(config.interconnect, 4, stats)
        assert isinstance(build_memory(config, net, stats), CentralizedMemory)
        dconfig = decentralized_config(4)
        assert isinstance(
            build_memory(dconfig, Network(dconfig.interconnect, 4, stats), stats),
            DecentralizedMemory,
        )

    def test_wrong_config_rejected(self):
        config = default_config(4)
        stats = SimStats()
        net = Network(config.interconnect, 4, stats)
        with pytest.raises(ConfigError):
            DecentralizedMemory(config, net, stats)


class TestCentralizedLoads:
    def test_home_cluster_load_latency(self):
        """A load from the home cluster pays no network cost: probe at the
        address cycle, data after the 6-cycle RAM access (plus a possible
        L2 trip on a cold miss)."""
        mem, stats = _central()
        load = _ld(0, 0x1000)
        mem.dispatch(load, cluster=0, cycle=5)
        mem.address_ready(load, cycle=10)
        [(idx, ready)] = mem.drain_completions()
        assert idx == 0
        # fully cold: 6 (L1 miss) + 25 (L2 miss) + 160 (memory), probe at 10
        assert ready == 10 + 6 + 25 + 160

    def test_warm_hit_latency(self):
        mem, stats = _central()
        first = _ld(0, 0x1000)
        mem.dispatch(first, 0, 1)
        mem.address_ready(first, 2)
        mem.drain_completions()
        mem.commit(first, 50)
        second = _ld(1, 0x1000)
        mem.dispatch(second, 0, 60)
        mem.address_ready(second, 61)
        [(_, ready)] = mem.drain_completions()
        assert ready == 61 + 6  # L1 hit
        assert stats.l1_hits == 1

    def test_remote_cluster_pays_hops(self):
        mem, stats = _central()
        load = _ld(0, 0x1000)
        mem.dispatch(load, cluster=8, cycle=1)  # 8 hops from home on the ring
        mem.address_ready(load, cycle=10)
        [(_, ready)] = mem.drain_completions()
        assert ready >= 10 + 8 + 6 + 25 + 8

    def test_store_commit_writes_cache(self):
        mem, stats = _central()
        store = _st(0, 0x2000)
        mem.dispatch(store, 0, 1)
        mem.address_ready(store, 2)
        mem.commit(store, 10)
        load = _ld(1, 0x2000)
        mem.dispatch(load, 0, 20)
        mem.address_ready(load, 21)
        [(_, ready)] = mem.drain_completions()
        assert ready == 21 + 6  # hits the line the store allocated

    def test_forwarding_from_inflight_store(self):
        mem, stats = _central()
        store = _st(0, 0x3000)
        load = _ld(1, 0x3000)
        mem.dispatch(store, 0, 1)
        mem.dispatch(load, 0, 1)
        mem.address_ready(store, 5)
        mem.address_ready(load, 6)
        [(_, ready)] = mem.drain_completions()
        assert ready == 6 + 1  # LSQ forwarding, no RAM access

    def test_lsq_capacity_gates_dispatch(self):
        mem, stats = _central(num_clusters=1)  # capacity 15
        for i in range(15):
            assert mem.can_dispatch(_ld(i, 0x100 + 4 * i))
            mem.dispatch(_ld(i, 0x100 + 4 * i), 0, 1)
        assert not mem.can_dispatch(_ld(15, 0x200))


class TestDecentralized:
    def test_bank_mapping_follows_active_count(self):
        mem, _ = _decentral(16)
        assert mem.bank_cluster(0x08) == 1  # 8-byte interleave
        assert mem.bank_cluster(0x80) == 0
        mem.set_active_clusters(4, cycle=0)
        assert mem.bank_cluster(0x08) == 1
        assert mem.bank_cluster(0x20) == 0  # wraps at 4 banks now

    def test_preferred_cluster_uses_predictor(self):
        mem, _ = _decentral(16)
        load = _ld(0, 0x08)
        # train the speculative path: the same PC always touches bank 1
        for _ in range(6):
            _, token = mem.predictor.predict_speculative(load.pc)
            mem.predictor.resolve(token, 1)
        assert mem.preferred_cluster(load) == 1

    def test_bank_mispredict_counted(self):
        mem, stats = _decentral(16)
        load = _ld(0, 0x08)  # actual bank 1
        mem.dispatch(load, cluster=3, cycle=1)  # steered wrong
        mem.address_ready(load, cycle=5)
        assert stats.bank_predictions == 1
        assert stats.bank_mispredictions == 1
        assert mem.drain_completions()  # still completes (re-routed)

    def test_store_broadcast_counted(self):
        mem, stats = _decentral(16)
        store = _st(0, 0x10)
        mem.dispatch(store, cluster=0, cycle=1)
        mem.address_ready(store, cycle=5)
        assert stats.store_broadcasts == 1

    def test_reconfigure_flushes_dirty_lines(self):
        mem, stats = _decentral(16)
        store = _st(0, 0x10)
        mem.dispatch(store, cluster=2, cycle=1)
        mem.address_ready(store, cycle=2)
        mem.commit(store, 10)  # dirty line in bank 2
        stall = mem.set_active_clusters(4, cycle=20)
        assert stall > 0
        assert stats.cache_flushes == 1
        assert stats.flush_writebacks >= 1

    def test_reconfigure_same_count_is_free(self):
        mem, stats = _decentral(16)
        assert mem.set_active_clusters(16, cycle=5) == 0
        assert stats.cache_flushes == 0

    def test_load_completes_at_requesting_cluster(self):
        mem, stats = _decentral(16)
        load = _ld(0, 0x08)  # bank 1
        mem.dispatch(load, cluster=1, cycle=1)
        mem.address_ready(load, cycle=5)
        [(idx, ready)] = mem.drain_completions()
        assert idx == 0
        assert ready >= 5 + 4  # at least the bank RAM latency
