"""Distributed LSQ with the dummy-slot store protocol (Section 5)."""

import pytest

from repro.errors import SimulationError
from repro.memory.distributed_lsq import DistributedLSQ
from repro.memory.lsq import MemAccess


def _load(index, addr, cluster):
    return MemAccess(index, cluster, addr, is_store=False)


def _store(index, addr, cluster):
    return MemAccess(index, cluster, addr, is_store=True)


class TestAllocation:
    def test_load_occupies_one_slice(self):
        lsq = DistributedLSQ(4, 2)
        lsq.allocate_load(_load(0, 0x10, cluster=2))
        assert lsq.occupancy(2) == 1
        assert lsq.occupancy(0) == 0

    def test_store_occupies_every_active_slice(self):
        """The dummy-slot protocol: a store reserves an entry everywhere."""
        lsq = DistributedLSQ(4, 2)
        lsq.allocate_store(_store(0, 0x10, cluster=1), banks=4)
        assert all(lsq.occupancy(k) == 1 for k in range(4))

    def test_store_respects_active_subset(self):
        lsq = DistributedLSQ(4, 2)
        lsq.allocate_store(_store(0, 0x10, cluster=0), banks=2)
        assert lsq.occupancy(0) == 1 and lsq.occupancy(1) == 1
        assert lsq.occupancy(2) == 0

    def test_capacity_checks(self):
        lsq = DistributedLSQ(2, 1)
        lsq.allocate_load(_load(0, 0x10, cluster=0))
        assert not lsq.can_allocate_load(0)
        assert lsq.can_allocate_load(1)
        assert not lsq.can_allocate_store(2)

    def test_overflow_raises(self):
        lsq = DistributedLSQ(2, 1)
        lsq.allocate_load(_load(0, 0x10, cluster=0))
        with pytest.raises(SimulationError):
            lsq.allocate_load(_load(1, 0x20, cluster=0))


class TestDummyRelease:
    def test_dummies_freed_at_broadcast_arrival(self):
        lsq = DistributedLSQ(4, 2)
        store = _store(0, 0x18, cluster=1)  # bank 3 under 8B interleave? set below
        lsq.allocate_store(store, banks=4)
        # broadcast arrivals per cluster; bank cluster is 2 -> kept until commit
        lsq.store_address_ready(0, bank_cluster=2, arrivals={0: 10, 1: 5, 2: 7, 3: 12})
        lsq.tick(9)
        assert lsq.occupancy(1) == 0   # arrival 5
        assert lsq.occupancy(2) == 1   # kept (bank cluster)
        assert lsq.occupancy(3) == 1   # arrival 12 not reached
        lsq.tick(12)
        assert lsq.occupancy(3) == 0
        assert lsq.occupancy(2) == 1

    def test_release_frees_kept_slot(self):
        lsq = DistributedLSQ(4, 2)
        lsq.allocate_store(_store(0, 0x18, cluster=1), banks=4)
        lsq.store_address_ready(0, bank_cluster=2, arrivals={k: 5 for k in range(4)})
        lsq.tick(5)
        lsq.release(0)
        assert all(lsq.occupancy(k) == 0 for k in range(4))


class TestLoadBlocking:
    def test_load_blocked_by_unresolved_store(self):
        lsq = DistributedLSQ(4, 4)
        lsq.allocate_store(_store(0, 0x100, cluster=0), banks=4)
        lsq.allocate_load(_load(1, 0x200, cluster=1))
        lsq.load_address_ready(1, arrival=20)
        assert lsq.schedulable_loads() == []
        lsq.store_address_ready(0, bank_cluster=0, arrivals={k: 30 for k in range(4)})
        assert [a.index for a in lsq.schedulable_loads()] == [1]

    def test_probe_uses_per_cluster_arrival(self):
        lsq = DistributedLSQ(4, 4)
        lsq.allocate_store(_store(0, 0x100, cluster=0), banks=4)
        lsq.allocate_load(_load(1, 0x200, cluster=3))
        lsq.store_address_ready(0, bank_cluster=0, arrivals={0: 10, 1: 11, 2: 12, 3: 40})
        lsq.load_address_ready(1, arrival=20)
        (load,) = lsq.schedulable_loads()
        barrier, forward = lsq.probe_constraints(load, bank_cluster=3)
        assert barrier == 40
        assert not forward

    def test_forwarding_same_word(self):
        lsq = DistributedLSQ(4, 4)
        lsq.allocate_store(_store(0, 0x100, cluster=0), banks=4)
        lsq.allocate_load(_load(1, 0x100, cluster=0))
        lsq.store_address_ready(0, bank_cluster=0, arrivals={k: 10 for k in range(4)})
        lsq.load_address_ready(1, arrival=20)
        (load,) = lsq.schedulable_loads()
        barrier, forward = lsq.probe_constraints(load, bank_cluster=0)
        assert forward


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            DistributedLSQ(0, 1)
        with pytest.raises(ValueError):
            DistributedLSQ(4, 0)
