"""Centralized LSQ disambiguation and forwarding."""

import pytest

from repro.errors import SimulationError
from repro.memory.lsq import CentralizedLSQ, MemAccess


def _load(index, addr, cluster=0):
    return MemAccess(index, cluster, addr, is_store=False)


def _store(index, addr, cluster=0):
    return MemAccess(index, cluster, addr, is_store=True)


class TestCapacity:
    def test_full_flag(self):
        lsq = CentralizedLSQ(2)
        lsq.allocate(_load(0, 0x10))
        assert not lsq.full
        lsq.allocate(_store(1, 0x20))
        assert lsq.full

    def test_overflow_raises(self):
        lsq = CentralizedLSQ(1)
        lsq.allocate(_load(0, 0x10))
        with pytest.raises(SimulationError):
            lsq.allocate(_load(1, 0x20))

    def test_release_frees_space(self):
        lsq = CentralizedLSQ(1)
        lsq.allocate(_load(0, 0x10))
        lsq.release(0)
        lsq.allocate(_load(1, 0x20))

    def test_validation(self):
        with pytest.raises(ValueError):
            CentralizedLSQ(0)


class TestDefaultDisambiguation:
    """Address-precise policy: only same-word stores block."""

    def test_load_with_no_stores_schedules_immediately(self):
        lsq = CentralizedLSQ(8)
        lsq.allocate(_load(0, 0x10))
        lsq.load_address_ready(0, arrival=50)
        ready = lsq.schedulable_loads()
        assert [a.index for a in ready] == [0]

    def test_unrelated_unresolved_store_does_not_block(self):
        lsq = CentralizedLSQ(8)
        lsq.allocate(_store(0, 0x100))
        lsq.allocate(_load(1, 0x200))
        lsq.load_address_ready(1, arrival=50)
        assert [a.index for a in lsq.schedulable_loads()] == [1]

    def test_same_word_unresolved_store_blocks(self):
        lsq = CentralizedLSQ(8)
        lsq.allocate(_store(0, 0x100))
        lsq.allocate(_load(1, 0x100))
        lsq.load_address_ready(1, arrival=50)
        assert lsq.schedulable_loads() == []
        lsq.store_address_ready(0, arrival=80)
        ready = lsq.schedulable_loads()
        assert [a.index for a in ready] == [1]

    def test_later_store_never_blocks(self):
        lsq = CentralizedLSQ(8)
        lsq.allocate(_load(0, 0x100))
        lsq.allocate(_store(1, 0x100))  # younger than the load
        lsq.load_address_ready(0, arrival=50)
        assert [a.index for a in lsq.schedulable_loads()] == [0]

    def test_forwarding_detected(self):
        lsq = CentralizedLSQ(8)
        lsq.allocate(_store(0, 0x100))
        lsq.allocate(_load(1, 0x100))
        lsq.store_address_ready(0, arrival=30)
        lsq.load_address_ready(1, arrival=50)
        (load,) = lsq.schedulable_loads()
        barrier, forward = lsq.probe_constraints(load)
        assert forward
        assert barrier == 30

    def test_no_forwarding_for_different_word(self):
        lsq = CentralizedLSQ(8)
        lsq.allocate(_store(0, 0x104))
        lsq.allocate(_load(1, 0x100))
        lsq.store_address_ready(0, arrival=30)
        lsq.load_address_ready(1, arrival=50)
        (load,) = lsq.schedulable_loads()
        barrier, forward = lsq.probe_constraints(load)
        assert not forward
        assert barrier == 0  # unrelated store does not constrain the probe


class TestConservativeDisambiguation:
    """Section 2.1 policy variant: all earlier store addresses must be known."""

    def test_any_unresolved_store_blocks(self):
        lsq = CentralizedLSQ(8, conservative=True)
        lsq.allocate(_store(0, 0x100))
        lsq.allocate(_load(1, 0x999))
        lsq.load_address_ready(1, arrival=50)
        assert lsq.schedulable_loads() == []
        lsq.store_address_ready(0, arrival=70)
        assert [a.index for a in lsq.schedulable_loads()] == [1]

    def test_barrier_is_latest_store_arrival(self):
        lsq = CentralizedLSQ(8, conservative=True)
        lsq.allocate(_store(0, 0x100))
        lsq.allocate(_store(1, 0x200))
        lsq.allocate(_load(2, 0x300))
        lsq.store_address_ready(0, arrival=30)
        lsq.store_address_ready(1, arrival=90)
        lsq.load_address_ready(2, arrival=50)
        (load,) = lsq.schedulable_loads()
        barrier, forward = lsq.probe_constraints(load)
        assert barrier == 90
        assert not forward


class TestRelease:
    def test_release_returns_access(self):
        lsq = CentralizedLSQ(4)
        lsq.allocate(_store(3, 0xABC))
        access = lsq.release(3)
        assert access.index == 3 and access.is_store

    def test_release_unblocks_nothing_spurious(self):
        lsq = CentralizedLSQ(4)
        lsq.allocate(_store(0, 0x100))
        lsq.allocate(_load(1, 0x100))
        lsq.load_address_ready(1, arrival=10)
        assert lsq.schedulable_loads() == []
        lsq.store_address_ready(0, arrival=20)
        lsq.release(0)
        # the load is still pending and now schedulable
        assert [a.index for a in lsq.schedulable_loads()] == [1]
