"""Set-associative cache and bank scheduler."""

import pytest

from repro.config import CacheConfig
from repro.memory.cache import BankScheduler, SetAssocCache


def _cache(size=1024, assoc=2, line=32):
    return SetAssocCache(CacheConfig(size=size, assoc=assoc, line_size=line))


class TestCache:
    def test_cold_miss_then_hit(self):
        c = _cache()
        assert not c.access(0x100, False).hit
        assert c.access(0x100, False).hit

    def test_same_line_hits(self):
        c = _cache(line=32)
        c.access(0x100, False)
        assert c.access(0x11F, False).hit
        assert not c.access(0x120, False).hit

    def test_lru_eviction(self):
        c = _cache(size=128, assoc=2, line=32)  # 2 sets
        # three lines mapping to set 0: line numbers 0, 2, 4 (addr 0, 64, 128)
        c.access(0, False)
        c.access(64, False)
        c.access(0, False)  # 0 is MRU
        c.access(128, False)  # evicts 64
        assert c.access(0, False).hit
        assert not c.access(64, False).hit

    def test_dirty_writeback_on_eviction(self):
        c = _cache(size=128, assoc=1, line=32)  # 4 sets, direct mapped
        c.access(0, True)  # dirty
        result = c.access(128, False)  # same set, evicts dirty line
        assert result.writeback

    def test_clean_eviction_no_writeback(self):
        c = _cache(size=128, assoc=1, line=32)
        c.access(0, False)
        assert not c.access(128, False).writeback

    def test_flush_counts_dirty_lines(self):
        c = _cache()
        c.access(0x000, True)
        c.access(0x100, True)
        c.access(0x200, False)
        assert c.flush() == 2
        assert c.resident_lines == 0
        assert not c.access(0x000, False).hit  # cold after flush

    def test_probe_is_non_destructive(self):
        c = _cache()
        assert not c.probe(0x40)
        assert not c.access(0x40, False).hit  # probe did not allocate
        assert c.probe(0x40)

    def test_write_marks_dirty(self):
        c = _cache(size=64, assoc=1, line=32)  # 2 sets
        c.access(0, False)
        c.access(0, True)
        assert c.flush() == 1

    def test_zero_sets_rejected(self):
        with pytest.raises(ValueError):
            SetAssocCache(CacheConfig(size=16, assoc=2, line_size=32))


class TestBankScheduler:
    def test_single_port_serializes(self):
        b = BankScheduler(banks=2)
        assert b.reserve(0, 5) == 5
        assert b.reserve(0, 5) == 6
        assert b.reserve(1, 5) == 5

    def test_two_ports(self):
        b = BankScheduler(banks=1, ports_per_bank=2)
        assert b.reserve(0, 5) == 5
        assert b.reserve(0, 5) == 5
        assert b.reserve(0, 5) == 6

    def test_reset(self):
        b = BankScheduler(banks=1)
        b.reserve(0, 5)
        b.reset()
        assert b.reserve(0, 5) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            BankScheduler(0)
