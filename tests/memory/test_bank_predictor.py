"""Two-level bank predictor (Yoaz et al. style)."""

import pytest

from repro.memory.bank_predictor import TwoLevelBankPredictor


class TestBankPredictor:
    def test_learns_constant_bank(self):
        p = TwoLevelBankPredictor()
        for _ in range(8):
            p.update(0x40, 5)
        assert p.predict(0x40) == 5

    def test_learns_repeating_pattern(self):
        """A strided access walking banks 0,1,2,3,0,1,... is learnable via
        the per-PC bank history."""
        p = TwoLevelBankPredictor(history_bits=8, max_banks=4)
        pattern = [0, 1, 2, 3] * 60
        correct = 0
        for bank in pattern:
            if p.predict(0x40) == bank:
                correct += 1
            p.update(0x40, bank)
        assert correct / len(pattern) > 0.9

    def test_low_bits_remain_correct_with_fewer_banks(self):
        """Section 5: with 4 active clusters, prediction % 4 gives the bank."""
        p = TwoLevelBankPredictor(max_banks=16)
        for _ in range(8):
            p.update(0x40, 13)
        assert p.predict(0x40) % 4 == 13 % 4 == 1

    def test_update_validates_bank(self):
        p = TwoLevelBankPredictor(max_banks=16)
        with pytest.raises(ValueError):
            p.update(0x40, 16)
        with pytest.raises(ValueError):
            p.update(0x40, -1)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            TwoLevelBankPredictor(l1_size=1000)
        with pytest.raises(ValueError):
            TwoLevelBankPredictor(l2_size=1000)

    def test_distinct_pcs_learn_distinct_banks(self):
        p = TwoLevelBankPredictor()
        for _ in range(8):
            p.update(0x40, 2)
            p.update(0x80, 9)
        assert p.predict(0x40) == 2
        assert p.predict(0x80) == 9
