"""Cluster partitioning between threads."""

import pytest

from repro.partition import ScalingCurve, best_partition, measure_scaling, partition_report


def _flat(name="flat", ipc=1.0):
    return ScalingCurve(name, {2: ipc, 4: ipc, 8: ipc, 16: ipc})


def _scaling(name="scaling"):
    return ScalingCurve(name, {2: 0.5, 4: 1.0, 8: 1.8, 16: 2.4})


class TestScalingCurve:
    def test_at_uses_largest_fitting_allocation(self):
        c = _scaling()
        assert c.at(16) == 2.4
        assert c.at(10) == 1.8  # runs the 8-cluster configuration
        assert c.at(3) == 0.5
        assert c.at(1) == 0.0

    def test_best_allocation(self):
        assert _scaling().best_allocation == 16

    def test_saturation(self):
        c = ScalingCurve("s", {2: 1.0, 4: 1.99, 8: 2.0, 16: 2.0})
        assert c.saturation_allocation == 4


class TestBestPartition:
    def test_serial_plus_parallel(self):
        """A saturating thread should cede clusters to a scaling one."""
        serial = ScalingCurve("serial", {2: 0.8, 4: 0.85, 8: 0.85, 16: 0.85})
        parallel = ScalingCurve(
            "parallel", {2: 0.5, 4: 1.0, 8: 1.8, 12: 2.1, 16: 2.4}
        )
        split, value = best_partition([serial, parallel], 16)
        assert split[1] > split[0]  # the scaling thread gets the larger share
        assert value > serial.at(8) + parallel.at(8)  # beats the even split

    def test_two_flat_threads_any_split(self):
        split, value = best_partition([_flat("a"), _flat("b")], 16)
        assert sum(split) == 16
        assert value == pytest.approx(2.0)

    def test_single_thread_gets_everything(self):
        split, value = best_partition([_scaling()], 16)
        assert split == (16,)
        assert value == 2.4

    def test_three_way(self):
        split, value = best_partition([_flat("a"), _flat("b"), _scaling()], 16)
        assert sum(split) == 16
        assert len(split) == 3

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            best_partition([_flat(str(i)) for i in range(9)], 16, granularity=2)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            best_partition([], 16)

    def test_custom_objective(self):
        # maximize the minimum thread's IPC instead of the sum
        serial = ScalingCurve("serial", {2: 0.2, 4: 0.5, 8: 0.9, 16: 1.0})
        parallel = _scaling()
        split, _ = best_partition([serial, parallel], 16, objective=min)
        assert split[0] >= 8  # fairness pushes clusters to the weak thread


class TestIntegration:
    def test_measure_scaling_from_simulation(self, parallel_trace):
        curve = measure_scaling(parallel_trace, allocations=(4, 16), warmup=1500)
        assert set(curve.ipc) == {4, 16}
        assert curve.ipc[16] > curve.ipc[4]

    def test_report_format(self):
        text = partition_report([_flat("alpha"), _scaling()], 16)
        assert "alpha" in text and "combined IPC" in text
