"""Static loop-body construction."""

import random

import pytest

from repro.workloads.blocks import BranchSite, PhaseParams, build_loop_body
from repro.workloads.instruction import OpClass


class TestBranchSite:
    def test_biased_outcomes(self):
        site = BranchSite(0, "biased", 1.0, random.Random(1))
        assert all(site.next_outcome() for _ in range(50))
        site = BranchSite(0, "biased", 0.0, random.Random(1))
        assert not any(site.next_outcome() for _ in range(50))

    def test_pattern_period(self):
        site = BranchSite(0, "pattern", 4, random.Random(1))
        outcomes = [site.next_outcome() for _ in range(8)]
        assert outcomes == [True, True, True, False] * 2

    def test_noisy_rate(self):
        site = BranchSite(0, "noisy", 1.0, random.Random(2), noise=0.5)
        taken = sum(site.next_outcome() for _ in range(4000))
        # expected taken = 0.5*1.0 + 0.5*0.5 = 0.75
        assert 0.70 < taken / 4000 < 0.80

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BranchSite(0, "chaotic", 0.5, random.Random(1))

    def test_bad_noise_rejected(self):
        with pytest.raises(ValueError):
            BranchSite(0, "noisy", 0.5, random.Random(1), noise=2.0)


class TestPhaseParams:
    def test_defaults_valid(self):
        PhaseParams()

    def test_tiny_body_rejected(self):
        with pytest.raises(ValueError):
            PhaseParams(body_size=1)

    def test_bad_cross_dep_rejected(self):
        with pytest.raises(ValueError):
            PhaseParams(cross_iter_dep=1.5)

    def test_bad_mem_pattern_rejected(self):
        with pytest.raises(ValueError):
            PhaseParams(mem_pattern="zigzag")


class TestBuildLoopBody:
    def _body(self, **kw):
        params = PhaseParams(name="t", body_size=24, inner_branches=2,
                             frac_load=0.3, frac_store=0.1, **kw)
        return build_loop_body(params, pc_base=0x1000, rng=random.Random(3),
                               data_base=0x100000)

    def test_segment_structure(self):
        body = self._body()
        assert len(body.segments) == 3  # inner_branches + 1
        assert len(body.branch_sites) == 2

    def test_pcs_unique_and_ordered(self):
        body = self._body()
        pcs = [i.pc for seg in body.segments for i in seg]
        pcs += [s.pc for s in body.branch_sites]
        pcs += [body.call_pc, body.loop_branch.pc]
        assert len(set(pcs)) == len(pcs)

    def test_slots_unique(self):
        body = self._body()
        slots = [i.slot for seg in body.segments for i in seg]
        slots += [i.slot for i in body.callee]
        assert len(set(slots)) == len(slots)

    def test_memory_sites_have_streams(self):
        body = self._body()
        for seg in body.segments:
            for instr in seg:
                if instr.op in (OpClass.LOAD, OpClass.STORE):
                    assert instr.stream is not None
                else:
                    assert instr.stream is None

    def test_footprint_divided_among_sites(self):
        """The phase working set is a total, not per-site."""
        params = PhaseParams(name="t", body_size=30, frac_load=0.4,
                             frac_store=0.1, working_set=64 * 1024,
                             mem_pattern="strided")
        body = build_loop_body(params, 0x1000, random.Random(4), 0x100000)
        streams = [
            i.stream for seg in body.segments for i in seg if i.stream is not None
        ]
        assert streams
        total = sum(s.extent for s in streams)
        # total footprint within 2x of the requested working set
        assert total <= 2 * params.working_set

    def test_pattern_site_allocation(self):
        params = PhaseParams(name="t", body_size=24, inner_branches=4,
                             pattern_branch_frac=0.5)
        body = build_loop_body(params, 0x1000, random.Random(5), 0x100000)
        kinds = [s.kind for s in body.branch_sites]
        assert kinds.count("pattern") == 2
        assert all(k in ("pattern", "noisy") for k in kinds)

    def test_callee_layout(self):
        body = self._body()
        assert body.loop_branch.pc == body.call_pc + 4
        if body.callee:
            # returns land on the instruction after the call
            assert body.callee[0].pc != body.call_pc


class TestDeterministicMix:
    def test_op_counts_stable_across_seeds(self):
        """The op mix uses exact counts, so the number of memory sites (and
        with it the data footprint) must not vary with the seed."""
        import random as _random

        params = PhaseParams(name="t", body_size=30, frac_load=0.3, frac_store=0.1)
        counts = set()
        for seed in range(6):
            body = build_loop_body(params, 0x1000, _random.Random(seed), 0x100000)
            n_mem = sum(
                1 for seg in body.segments for i in seg
                if i.op in (OpClass.LOAD, OpClass.STORE)
            )
            counts.add(n_mem)
        assert len(counts) == 1

    def test_fp_fraction_exact(self):
        import random as _random

        params = PhaseParams(name="t", body_size=40, frac_fp=0.5,
                             frac_load=0.2, frac_store=0.1, inner_branches=1)
        body = build_loop_body(params, 0x1000, _random.Random(1), 0x100000)
        ops = [i.op for seg in body.segments for i in seg]
        fp = sum(1 for op in ops if op in (OpClass.FP_ALU, OpClass.FP_MUL))
        compute = sum(
            1 for op in ops if op not in (OpClass.LOAD, OpClass.STORE)
        )
        assert fp == round(0.5 * compute)


class TestStencilSharing:
    def test_strided_loads_share_regions(self):
        """Groups of up to three strided load sites walk the same array at
        neighbouring offsets (cache-line sharing, like a[i-1], a[i], a[i+1])."""
        import random as _random

        params = PhaseParams(name="t", body_size=30, frac_load=0.4,
                             frac_store=0.0, mem_pattern="strided",
                             working_set=32 * 1024, stride=8)
        body = build_loop_body(params, 0x1000, _random.Random(2), 0x100000)
        loads = [
            i.stream for seg in body.segments for i in seg
            if i.op is OpClass.LOAD
        ]
        assert len(loads) >= 3
        bases = sorted(s.base for s in loads)
        # at least one pair of sites within a stencil's offset range
        gaps = [b - a for a, b in zip(bases, bases[1:])]
        assert any(g <= 2 * 8 for g in gaps)

    def test_random_pattern_keeps_private_regions(self):
        import random as _random

        params = PhaseParams(name="t", body_size=30, frac_load=0.4,
                             frac_store=0.0, mem_pattern="random",
                             working_set=32 * 1024)
        body = build_loop_body(params, 0x1000, _random.Random(2), 0x100000)
        loads = [
            i.stream for seg in body.segments for i in seg
            if i.op is OpClass.LOAD
        ]
        bases = sorted(s.base for s in loads)
        gaps = [b - a for a, b in zip(bases, bases[1:])]
        assert all(g > 256 for g in gaps)
