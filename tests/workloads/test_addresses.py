"""Address-stream generators."""

import random

import pytest

from repro.workloads.addresses import (
    HotColdStream,
    PointerChaseStream,
    StridedStream,
    WorkingSetStream,
)


class TestStrided:
    def test_sequence_and_wrap(self):
        s = StridedStream(base=100, stride=8, extent=32)
        addrs = [s.next_address() for _ in range(6)]
        assert addrs == [100, 108, 116, 124, 100, 108]

    def test_negative_stride(self):
        s = StridedStream(base=0, stride=-4, extent=16)
        a = [s.next_address() for _ in range(4)]
        assert a[0] == 0
        assert all(0 <= x < 16 for x in a[1:])

    def test_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            StridedStream(0, 0, 16)

    def test_bad_extent_rejected(self):
        with pytest.raises(ValueError):
            StridedStream(0, 4, 0)


class TestWorkingSet:
    def test_bounds_and_alignment(self):
        rng = random.Random(1)
        s = WorkingSetStream(base=0x1000, size=256, rng=rng, align=4)
        for _ in range(200):
            a = s.next_address()
            assert 0x1000 <= a < 0x1000 + 256
            assert a % 4 == 0

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            WorkingSetStream(0, 0, random.Random(1))


class TestPointerChase:
    def test_cyclic_permutation(self):
        rng = random.Random(2)
        s = PointerChaseStream(base=0, nodes=8, node_size=64, rng=rng)
        first_pass = [s.next_address() for _ in range(8)]
        second_pass = [s.next_address() for _ in range(8)]
        assert sorted(first_pass) == [i * 64 for i in range(8)]
        assert first_pass == second_pass  # the sequence repeats exactly

    def test_single_node(self):
        s = PointerChaseStream(0, 1, 64, random.Random(3))
        assert s.next_address() == s.next_address() == 0

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            PointerChaseStream(0, 0, 64, random.Random(1))


class TestHotCold:
    def test_distribution(self):
        rng = random.Random(4)
        s = HotColdStream(base=0, hot_size=64, cold_size=4096, hot_prob=0.9, rng=rng)
        hot = sum(1 for _ in range(2000) if s.next_address() < 64)
        assert 0.85 < hot / 2000 < 0.95

    def test_cold_addresses_beyond_hot(self):
        rng = random.Random(5)
        s = HotColdStream(base=0, hot_size=64, cold_size=256, hot_prob=0.0, rng=rng)
        for _ in range(100):
            assert 64 <= s.next_address() < 64 + 256

    def test_bad_prob_rejected(self):
        with pytest.raises(ValueError):
            HotColdStream(0, 64, 256, 1.5, random.Random(1))
