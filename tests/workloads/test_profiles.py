"""The nine benchmark profiles."""

import pytest

from repro.workloads.generator import generate_trace
from repro.workloads.profiles import (
    BENCHMARK_NAMES,
    DISTANT_ILP_BENCHMARKS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    all_profiles,
    get_profile,
)


class TestRegistry:
    def test_nine_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 9
        assert set(BENCHMARK_NAMES) == set(PAPER_TABLE3) == set(PAPER_TABLE4)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_profile("quake")

    def test_all_profiles_builds_everything(self):
        profiles = all_profiles()
        assert set(profiles) == set(BENCHMARK_NAMES)
        for name, p in profiles.items():
            assert p.name == name
            assert p.phases

    def test_distant_ilp_subset(self):
        assert set(DISTANT_ILP_BENCHMARKS) <= set(BENCHMARK_NAMES)
        assert "djpeg" in DISTANT_ILP_BENCHMARKS
        assert "vpr" not in DISTANT_ILP_BENCHMARKS


class TestCharacteristics:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_traces_generate(self, name):
        t = generate_trace(get_profile(name), 4_000, seed=1)
        assert len(t) == 4_000
        assert t.branch_count > 0
        assert t.memref_count > 0

    def test_fp_benchmarks_have_fp_work(self):
        for name in ("swim", "mgrid", "galgel"):
            t = generate_trace(get_profile(name), 5_000, seed=1)
            assert t.fp_fraction > 0.2, name

    def test_int_benchmarks_have_little_fp(self):
        for name in ("gzip", "vpr", "parser", "crafty"):
            t = generate_trace(get_profile(name), 5_000, seed=1)
            assert t.fp_fraction < 0.05, name

    def test_fp_codes_branch_rarely(self):
        """swim/mgrid have mispredict intervals in the thousands because
        they barely branch; the integer codes branch every ~5 instrs."""
        swim = generate_trace(get_profile("swim"), 5_000, seed=1)
        vpr = generate_trace(get_profile("vpr"), 5_000, seed=1)
        assert swim.branch_count / len(swim) < 0.12
        assert vpr.branch_count / len(vpr) > 0.18

    def test_crafty_has_calls(self):
        t = generate_trace(get_profile("crafty"), 10_000, seed=1)
        assert any(i.is_call for i in t)
        assert any(i.is_return for i in t)

    def test_phase_structure_distinguishes_steady_from_phased(self):
        steady = get_profile("swim")
        phased = get_profile("gzip")
        assert steady.schedule == "steady"
        assert phased.schedule == "alternate"
        assert len(phased.phases) == 2
