"""Instruction and trace model."""

import pytest

from repro.workloads.instruction import Instr, OpClass, Trace


class TestOpClass:
    def test_fp_classification(self):
        assert OpClass.FP_ALU.is_fp and OpClass.FP_MUL.is_fp
        assert not OpClass.INT_ALU.is_fp
        assert not OpClass.LOAD.is_fp

    def test_mem_classification(self):
        assert OpClass.LOAD.is_mem and OpClass.STORE.is_mem
        assert not OpClass.BRANCH.is_mem


class TestInstr:
    def test_dest_semantics(self):
        assert Instr(0, 0, OpClass.INT_ALU).has_dest
        assert Instr(0, 0, OpClass.LOAD).has_dest
        assert not Instr(0, 0, OpClass.STORE).has_dest
        assert not Instr(0, 0, OpClass.BRANCH).has_dest

    def test_sources_iterates_valid_only(self):
        i = Instr(5, 0, OpClass.INT_ALU, src1=3, src2=-1)
        assert list(i.sources()) == [3]
        j = Instr(5, 0, OpClass.INT_ALU, src1=1, src2=2)
        assert list(j.sources()) == [1, 2]
        k = Instr(5, 0, OpClass.INT_ALU)
        assert list(k.sources()) == []

    def test_flags(self):
        b = Instr(0, 0x40, OpClass.BRANCH, taken=True, target=0x80, is_call=True)
        assert b.is_branch and b.is_call and not b.is_return
        ld = Instr(1, 0x44, OpClass.LOAD, addr=0x1000)
        assert ld.is_load and ld.is_mem and not ld.is_store


class TestTrace:
    def _make(self, n=5):
        return [Instr(i, 4 * i, OpClass.INT_ALU, src1=i - 1 if i else -1) for i in range(n)]

    def test_valid_trace(self):
        t = Trace("t", self._make())
        assert len(t) == 5
        assert t[2].index == 2
        assert t.branch_count == 0

    def test_bad_index_rejected(self):
        instrs = self._make()
        instrs[3].index = 7
        with pytest.raises(ValueError):
            Trace("t", instrs)

    def test_future_dependence_rejected(self):
        instrs = self._make()
        instrs[2].src1 = 4
        with pytest.raises(ValueError):
            Trace("t", instrs)

    def test_self_dependence_rejected(self):
        instrs = self._make()
        instrs[2].src1 = 2
        with pytest.raises(ValueError):
            Trace("t", instrs)

    def test_counts(self):
        instrs = self._make(4)
        instrs.append(Instr(4, 16, OpClass.LOAD, addr=0x10))
        instrs.append(Instr(5, 20, OpClass.BRANCH, taken=True, target=0))
        t = Trace("t", instrs)
        assert t.memref_count == 1
        assert t.branch_count == 1
        assert t.fp_fraction == 0.0

    def test_slice_reindexes(self):
        t = Trace("t", self._make(10))
        sub = t.slice(4, 8)
        assert len(sub) == 4
        assert [i.index for i in sub] == [0, 1, 2, 3]
        # instruction 4 depended on 3, which is outside the slice
        assert sub[0].src1 == -1
        # instruction 5 depended on 4, which is slice-local index 0
        assert sub[1].src1 == 0

    def test_slice_preserves_pcs(self):
        t = Trace("t", self._make(10))
        sub = t.slice(2, 5)
        assert [i.pc for i in sub] == [8, 12, 16]
