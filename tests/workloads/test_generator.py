"""Dynamic trace generation."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.blocks import PhaseParams
from repro.workloads.generator import Profile, generate_trace
from repro.workloads.instruction import OpClass


def _profile(schedule="steady", phases=None, seg=1000):
    phases = phases or (PhaseParams(name="a"),)
    return Profile(name="p", phases=phases, schedule=schedule, segment_length=seg)


class TestProfileValidation:
    def test_no_phases_rejected(self):
        with pytest.raises(WorkloadError):
            Profile(name="p", phases=())

    def test_bad_schedule_rejected(self):
        with pytest.raises(WorkloadError):
            _profile(schedule="fractal")

    def test_bad_segment_rejected(self):
        with pytest.raises(WorkloadError):
            Profile(name="p", phases=(PhaseParams(),), segment_length=0)


class TestGeneration:
    def test_exact_length(self):
        t = generate_trace(_profile(), 5_000, seed=1)
        assert len(t) == 5_000

    def test_deterministic(self):
        a = generate_trace(_profile(), 3_000, seed=9)
        b = generate_trace(_profile(), 3_000, seed=9)
        assert all(
            (x.pc, x.op, x.src1, x.src2, x.addr, x.taken) ==
            (y.pc, y.op, y.src1, y.src2, y.addr, y.taken)
            for x, y in zip(a, b)
        )

    def test_seed_changes_trace(self):
        a = generate_trace(_profile(), 3_000, seed=1)
        b = generate_trace(_profile(), 3_000, seed=2)
        assert any(x.addr != y.addr or x.taken != y.taken for x, y in zip(a, b))

    def test_zero_length_rejected(self):
        with pytest.raises(WorkloadError):
            generate_trace(_profile(), 0)

    def test_dependences_point_backwards(self):
        t = generate_trace(_profile(), 4_000, seed=3)
        for i in t:
            assert i.src1 < i.index and i.src2 < i.index

    def test_dependences_reference_dest_producers(self):
        t = generate_trace(_profile(), 4_000, seed=3)
        for i in t:
            for s in i.sources():
                assert t[s].has_dest, f"instr {i.index} depends on non-producer {s}"

    def test_mix_roughly_matches_params(self):
        p = PhaseParams(name="m", body_size=30, frac_load=0.3, frac_store=0.1)
        t = generate_trace(_profile(phases=(p,)), 10_000, seed=4)
        loads = sum(1 for i in t if i.op is OpClass.LOAD) / len(t)
        stores = sum(1 for i in t if i.op is OpClass.STORE) / len(t)
        # per-build sampling variance on ~30 static slots is large
        assert 0.15 < loads < 0.45
        assert 0.02 < stores < 0.22


class TestBranchStructure:
    def test_branch_targets_present_when_taken(self):
        t = generate_trace(_profile(), 5_000, seed=5)
        for i in t:
            if i.is_branch and i.taken:
                assert i.target > 0

    def test_loop_branch_site_repeats(self):
        t = generate_trace(_profile(), 5_000, seed=5)
        pcs = {}
        for i in t:
            if i.is_branch:
                pcs[i.pc] = pcs.get(i.pc, 0) + 1
        assert max(pcs.values()) > 50  # the loop-back branch dominates

    def test_calls_and_returns_pair_up(self):
        p = PhaseParams(name="c", call_prob=0.5, callee_body=6)
        t = generate_trace(_profile(phases=(p,)), 8_000, seed=6)
        calls = [i for i in t if i.is_call]
        rets = [i for i in t if i.is_return]
        assert calls and len(calls) == len(rets)
        # the return target is the instruction after its call site
        for c, r in zip(calls, rets):
            assert r.target == c.pc + 4


class TestSerialChain:
    def test_high_cross_dep_builds_one_chain(self):
        p = PhaseParams(name="s", body_size=16, cross_iter_dep=0.9,
                        frac_load=0.0, frac_store=0.0, inner_branches=1,
                        within_dep=0.0, second_src_prob=0.0)
        t = generate_trace(_profile(phases=(p,)), 4_000, seed=7)
        # walk the longest src1 chain; it must span many iterations
        depth = {}
        best = 0
        for i in t:
            d = depth.get(i.src1, 0) + 1 if i.src1 >= 0 else 1
            depth[i.index] = d
            best = max(best, d)
        assert best > 200  # one recurrence threaded through the whole trace

    def test_zero_cross_dep_bounds_chains(self):
        p = PhaseParams(name="w", body_size=16, cross_iter_dep=0.0,
                        frac_load=0.0, frac_store=0.0, inner_branches=1,
                        chain_prob=0.5)
        t = generate_trace(_profile(phases=(p,)), 4_000, seed=7)
        depth = {}
        best = 0
        for i in t:
            srcs = [depth.get(s, 0) for s in i.sources()]
            d = (max(srcs) if srcs else 0) + 1
            depth[i.index] = d
            best = max(best, d)
        # only the 1-add-per-iteration induction chain is unbounded; count
        # iterations from the loop-back branch (the hottest branch site)
        from collections import Counter
        site_counts = Counter(i.pc for i in t if i.is_branch)
        iterations = max(site_counts.values())
        assert best <= iterations + p.body_size + 50


class TestSchedules:
    def _two_phase(self, schedule):
        a = PhaseParams(name="a", body_size=30, frac_fp=0.5)
        b = PhaseParams(name="b", body_size=12)
        return Profile(name="p", phases=(a, b), schedule=schedule,
                       segment_length=1_000, segment_jitter=0.0)

    def test_alternate_switches_phases(self):
        t = generate_trace(self._two_phase("alternate"), 6_000, seed=8)
        # phase A has FP work, phase B has none; both must appear
        fp = [i for i in t if i.is_fp]
        assert fp
        fp_fraction = len(fp) / len(t)
        assert 0.05 < fp_fraction < 0.45

    def test_steady_uses_single_phase(self):
        a = PhaseParams(name="a", frac_fp=0.5)
        b = PhaseParams(name="b")
        t = generate_trace(
            Profile(name="p", phases=(a, b), schedule="steady", segment_length=500),
            4_000, seed=8,
        )
        pcs = {i.pc >> 20 for i in t}
        assert len(pcs) == 1  # only phase 0's PC region

    def test_random_switches_phases(self):
        t = generate_trace(self._two_phase("random"), 8_000, seed=9)
        regions = {i.pc >> 20 for i in t}
        assert len(regions) == 2
