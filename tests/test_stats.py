"""Statistics containers and interval tracking."""

import pytest

from repro.stats import IntervalRecord, IntervalTracker, SimStats, merge_records


class TestSimStats:
    def test_ipc(self):
        s = SimStats(cycles=100, committed=250)
        assert s.ipc == 2.5

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_mispredict_interval(self):
        s = SimStats(committed=1000, mispredicts=10)
        assert s.mispredict_interval == 100
        assert SimStats(committed=100).mispredict_interval == float("inf")

    def test_branch_accuracy(self):
        s = SimStats(branches=100, mispredicts=5)
        assert s.branch_accuracy == 0.95
        assert SimStats().branch_accuracy == 1.0

    def test_l1_hit_rate(self):
        s = SimStats(l1_hits=90, l1_misses=10)
        assert s.l1_hit_rate == 0.9

    def test_avg_register_transfer_latency(self):
        s = SimStats(register_transfers=4, register_transfer_cycles=18)
        assert s.avg_register_transfer_latency == 4.5
        assert SimStats().avg_register_transfer_latency == 0.0

    def test_avg_active_clusters(self):
        s = SimStats(cycles=10, cluster_cycle_product=40)
        assert s.avg_active_clusters == 4.0

    def test_bank_prediction_accuracy(self):
        s = SimStats(bank_predictions=100, bank_mispredictions=20)
        assert s.bank_prediction_accuracy == 0.8

    def test_avg_owned_clusters(self):
        s = SimStats(cycles=10, owned_cluster_cycles=80)
        assert s.avg_owned_clusters == 8.0
        assert SimStats().avg_owned_clusters == 0.0

    def test_snapshot_keys(self):
        snap = SimStats(cycles=10, committed=20).snapshot()
        assert snap["ipc"] == 2.0
        assert "l1_hit_rate" in snap and "reconfigurations" in snap


class TestIntervalTracker:
    def test_deltas(self):
        s = SimStats()
        t = IntervalTracker(s)
        s.committed += 100
        s.cycles += 50
        s.branches += 10
        s.memrefs += 30
        s.distant_commits += 5
        w = t.since_last()
        assert (w.committed, w.cycles, w.branches, w.memrefs, w.distant_commits) == (
            100, 50, 10, 30, 5,
        )
        assert w.ipc == 2.0

    def test_consecutive_windows_independent(self):
        s = SimStats()
        t = IntervalTracker(s)
        s.committed += 100
        s.cycles += 100
        t.since_last()
        s.committed += 60
        s.cycles += 20
        w = t.since_last()
        assert w.committed == 60 and w.cycles == 20

    def test_committed_since_last(self):
        s = SimStats()
        t = IntervalTracker(s)
        s.committed += 42
        assert t.committed_since_last() == 42


class TestIntervalRecord:
    def test_ipc(self):
        assert IntervalRecord(100, 50, 1, 2).ipc == 2.0
        assert IntervalRecord(100, 0, 1, 2).ipc == 0.0

    def test_merge_drops_tail_remainder(self):
        records = [IntervalRecord(10, 5, 1, 2)] * 7
        merged = merge_records(records, 3)
        assert len(merged) == 2  # 7 // 3


class TestMerge:
    def test_merge_adds_every_field(self):
        import dataclasses

        a = SimStats(**{f.name: 2 for f in dataclasses.fields(SimStats)})
        b = SimStats(**{f.name: 3 for f in dataclasses.fields(SimStats)})
        out = a.merge(b)
        assert out is a  # in place, returns self for chaining
        for f in dataclasses.fields(SimStats):
            assert getattr(a, f.name) == 5, f.name
        # the donor is untouched
        assert all(getattr(b, f.name) == 3 for f in dataclasses.fields(SimStats))

    def test_merged_classmethod_sums_runs(self):
        runs = [
            SimStats(cycles=100, committed=250, mispredicts=2),
            SimStats(cycles=50, committed=25, mispredicts=1),
        ]
        total = SimStats.merged(runs)
        assert total.cycles == 150
        assert total.committed == 275
        assert total.mispredicts == 3
        assert total.ipc == pytest.approx(275 / 150)

    def test_merged_empty_is_zero(self):
        total = SimStats.merged([])
        assert total.cycles == 0 and total.ipc == 0.0

    def test_merge_sums_arbitration_counters(self):
        # the multiprog fields must survive aggregation (S301's guarantee)
        a = SimStats(arb_grants=3, arb_reclaims=1, owned_cluster_cycles=400)
        b = SimStats(arb_grants=2, arb_reclaims=4, owned_cluster_cycles=100)
        a.merge(b)
        assert a.arb_grants == 5
        assert a.arb_reclaims == 5
        assert a.owned_cluster_cycles == 500
        assert (b.arb_grants, b.arb_reclaims, b.owned_cluster_cycles) == (
            2, 4, 100,
        )

    def test_merge_is_associative(self):
        a = SimStats(cycles=10, committed=20)
        b = SimStats(cycles=30, committed=5)
        c = SimStats(cycles=7, committed=13)
        left = SimStats.merged([SimStats.merged([a, b]), c])
        right = SimStats.merged([a, SimStats.merged([b, c])])
        assert left.snapshot() == right.snapshot()
