"""Figure 5: interval-based reconfiguration (centralized cache).

Schemes: static 4/16, interval-based with exploration (Figure 4 algorithm),
and interval-based without exploration at three interval lengths (paper:
1K/10K/100K, scaled here to 0.5K/1K/2K).

Paper findings this bench should echo in shape:
* the dynamic schemes track the best static choice per program and improve
  on the single best static base case overall (paper: ~11%);
* djpeg loses under exploration (fine phases, coarse intervals) but is
  recovered by the short-interval no-exploration scheme;
* on average, more than 8 of the 16 clusters end up disabled.
"""

from repro.experiments.figures import figure5, print_figure5
from repro.experiments.reporting import geomean

from conftest import bench_trace_length


def test_fig5_interval_schemes(benchmark, save_result, sweep_runner):
    results = benchmark.pedantic(
        figure5,
        kwargs={"trace_length": bench_trace_length(), "runner": sweep_runner},
        rounds=1,
        iterations=1,
    )
    text = print_figure5(results)
    save_result("fig5_interval_schemes", text)

    # dynamic schemes must beat the single best static base case on average
    gm = {
        scheme: geomean(by[scheme].ipc for by in results.values())
        for scheme in next(iter(results.values()))
    }
    best_static = max(gm["static-4"], gm["static-16"])
    assert gm["no-explore-500"] > best_static * 0.97
    # steady FP codes: exploration matches the best static configuration
    for bench in ("swim", "mgrid"):
        by = results[bench]
        best = max(by["static-4"].ipc, by["static-16"].ipc)
        assert by["interval-explore"].ipc > best * 0.85, bench
