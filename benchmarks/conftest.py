"""Shared helpers for the exhibit-regeneration benchmarks.

Every benchmark regenerates one table or figure of the paper on synthetic
laptop-scale traces (see DESIGN.md for the substitutions), prints the
exhibit, and saves it under ``results/``.  ``REPRO_TRACE_SCALE`` lengthens
the traces toward paper scale on beefier machines.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: default dynamic-instruction count per benchmark trace (pre-scale)
BENCH_TRACE_LENGTH = 60_000


def bench_trace_length(base: int = BENCH_TRACE_LENGTH) -> int:
    from repro.experiments.runner import trace_scale

    return int(base * trace_scale())


@pytest.fixture(scope="session")
def sweep_runner():
    """The shared sweep engine for all exhibit benchmarks.

    Parallelism comes from ``REPRO_JOBS`` (default: cpu_count-1).  The
    result cache is *off* unless ``REPRO_BENCH_CACHE=1`` — cached timings
    would make the pytest-benchmark numbers meaningless; the assertions
    themselves are cache-safe because hits are bit-identical by key.
    """
    from repro.config import env_text
    from repro.experiments.sweep import SweepConfig, SweepRunner

    use_cache = env_text("REPRO_BENCH_CACHE", "") == "1"
    runner = SweepRunner(SweepConfig(use_cache=use_cache))
    yield runner
    print(f"\n[sweep metrics] {runner.metrics.snapshot()}")


@pytest.fixture(scope="session")
def save_result():
    """Persist an exhibit's text under results/ and echo it."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
