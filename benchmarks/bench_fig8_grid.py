"""Figure 8: grid interconnect (Section 6).

With the better-connected grid (48 links, max 6 hops vs the ring's 8),
communication is less of a bottleneck: the paper sees the 16-cluster base
gain 8% over 4 clusters and the dynamic improvement shrink to ~7%.
Expected shape here: the static-16 vs static-4 gap is wider than under the
ring, and exploration still tracks the per-program best.
"""

from repro.experiments.figures import figure8, print_figure8
from repro.experiments.reporting import geomean

from conftest import bench_trace_length


def test_fig8_grid(benchmark, save_result, sweep_runner):
    results = benchmark.pedantic(
        figure8,
        kwargs={"trace_length": bench_trace_length(), "runner": sweep_runner},
        rounds=1,
        iterations=1,
    )
    text = print_figure8(results)
    save_result("fig8_grid", text)

    gm = {
        scheme: geomean(by[scheme].ipc for by in results.values())
        for scheme in next(iter(results.values()))
    }
    # the grid makes wide configurations stronger overall
    assert gm["static-16"] > gm["static-4"] * 0.95
