"""Table 4: instability factor vs interval length.

The paper records per-interval IPC/branch/memref statistics and marks an
interval unstable when any metric shifts against its phase's reference.
Expected shape: swim/mgrid/galgel are stable at the smallest interval; the
phased integer and media codes (crafty, djpeg, vpr, cjpeg) show double-digit
instability at fine intervals and need coarser ones; the minimum acceptable
interval ordering follows the paper's.
"""

from repro.experiments.tables import print_table4, table4

from conftest import bench_trace_length


def test_table4_instability(benchmark, save_result, sweep_runner):
    profiles = benchmark.pedantic(
        table4,
        kwargs={
            "trace_length": bench_trace_length(),
            "granularity": 500,
            "factors": (1, 2, 4, 8, 16, 32),
            "runner": sweep_runner,
        },
        rounds=1,
        iterations=1,
    )
    text = print_table4(profiles)
    save_result("table4_instability", text)

    # steady FP codes approach stability within the measured interval
    # range; the fine-phased codes never do (they need the paper's
    # 320K-1.28M instruction intervals)
    assert profiles["swim"].minimum_acceptable_interval(0.10) is not None
    assert min(profiles["mgrid"].factors.values()) < 0.20
    for bench in ("crafty", "djpeg"):
        assert min(profiles[bench].factors.values()) > 0.30, bench
        assert profiles[bench].minimum_acceptable_interval(0.10) is None, bench
    # and the steady codes are more stable than the phased ones at fine grain
    finest = min(profiles["swim"].factors)
    assert profiles["swim"].factors[finest] < profiles["crafty"].factors[finest]
