"""Ablation: steering heuristics (Section 2.1 design choice).

The paper's steering is the producer-preference heuristic with a
criticality tiebreak and a load-imbalance threshold, which it notes can
approximate Mod_N (balance-first) and First_Fit (communication-first) by
tuning the threshold.  This ablation compares the three on a 16-cluster
machine.  Expected shape: producer steering wins overall; First_Fit does
relatively better on serial codes (communication dominates), Mod_N on
wide parallel codes (balance dominates).
"""

import pytest

from repro.clusters.steering import FirstFitSteering, ModNSteering
from repro.config import default_config
from repro.experiments.reporting import format_table, geomean
from repro.experiments.runner import TraceCache, run_trace
from repro.pipeline.processor import ClusteredProcessor
from repro.workloads.profiles import get_profile

from conftest import bench_trace_length

BENCHES = ("cjpeg", "gzip", "swim", "vpr", "djpeg")


def _run(trace, steering_cls):
    config = default_config(16)
    processor = ClusteredProcessor(trace, config)
    if steering_cls is not None:
        processor.steering = steering_cls(processor.clusters)
    warm = min(6_000, len(trace) // 4)
    while not processor.finished and processor.stats.committed < warm:
        processor.step()
    c0, i0 = processor.cycle, processor.stats.committed
    processor.run()
    return (processor.stats.committed - i0) / (processor.stats.cycles - c0)


def sweep(trace_length):
    cache = TraceCache(trace_length)
    out = {}
    for bench in BENCHES:
        trace = cache.get(get_profile(bench))
        out[bench] = {
            "producer": _run(trace, None),
            "mod-3": _run(trace, lambda cl: ModNSteering(cl, n=3)),
            "first-fit": _run(trace, FirstFitSteering),
        }
    return out


def test_steering_ablation(benchmark, save_result):
    results = benchmark.pedantic(
        sweep,
        kwargs={"trace_length": bench_trace_length(40_000)},
        rounds=1,
        iterations=1,
    )
    rows = [
        [b, results[b]["producer"], results[b]["mod-3"], results[b]["first-fit"]]
        for b in sorted(results)
    ]
    gms = [
        geomean(results[b][s] for b in results)
        for s in ("producer", "mod-3", "first-fit")
    ]
    rows.append(["geomean"] + gms)
    text = format_table(
        ["benchmark", "producer", "mod-3", "first-fit"],
        rows,
        "Steering-heuristic ablation (16 clusters, centralized cache)",
    )
    save_result("steering_ablation", text)
    # the paper's heuristic should not lose to either baseline overall
    assert gms[0] >= max(gms[1], gms[2]) * 0.97
