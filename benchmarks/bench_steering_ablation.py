"""Ablation: steering heuristics (Section 2.1 design choice).

The paper's steering is the producer-preference heuristic with a
criticality tiebreak and a load-imbalance threshold, which it notes can
approximate Mod_N (balance-first) and First_Fit (communication-first) by
tuning the threshold.  This ablation compares the three on a 16-cluster
machine.  Expected shape: producer steering wins overall; First_Fit does
relatively better on serial codes (communication dominates), Mod_N on
wide parallel codes (balance dominates).
"""

from repro.config import default_config
from repro.experiments.reporting import format_table, geomean
from repro.experiments.sweep import RunSpec, SweepConfig, SweepRunner, require_ok

from conftest import bench_trace_length

BENCHES = ("cjpeg", "gzip", "swim", "vpr", "djpeg")

#: scheme name -> RunSpec.steering override (None = producer default)
STEERINGS = {"producer": None, "mod-3": ("mod-n", 3), "first-fit": ("first-fit",)}


def sweep(trace_length, runner=None):
    runner = runner or SweepRunner(SweepConfig(jobs=1, use_cache=False))
    specs = [
        RunSpec(
            profile=bench,
            trace_length=trace_length,
            config=default_config(16),
            label=scheme,
            steering=steering,
            warmup=min(6_000, trace_length // 4),
        )
        for bench in BENCHES
        for scheme, steering in STEERINGS.items()
    ]
    out = {}
    for record in require_ok(runner.run(specs)):
        out.setdefault(record.spec.profile, {})[record.spec.label] = record.result.ipc
    return out


def test_steering_ablation(benchmark, save_result, sweep_runner):
    results = benchmark.pedantic(
        sweep,
        kwargs={"trace_length": bench_trace_length(40_000),
                "runner": sweep_runner},
        rounds=1,
        iterations=1,
    )
    rows = [
        [b, results[b]["producer"], results[b]["mod-3"], results[b]["first-fit"]]
        for b in sorted(results)
    ]
    gms = [
        geomean(results[b][s] for b in results)
        for s in ("producer", "mod-3", "first-fit")
    ]
    rows.append(["geomean"] + gms)
    text = format_table(
        ["benchmark", "producer", "mod-3", "first-fit"],
        rows,
        "Steering-heuristic ablation (16 clusters, centralized cache)",
    )
    save_result("steering_ablation", text)
    # the paper's heuristic should not lose to either baseline overall
    assert gms[0] >= max(gms[1], gms[2]) * 0.97
