"""Section 6 sensitivity analysis.

Variants: fewer per-cluster resources (10 IQ / 20 regs — paper improvement
shrinks to 8%), more resources (20 IQ / 40 regs — 13%), more functional
units (similar to base), and doubled hop latency (a strongly
communication-bound machine — 23%).  Expected shape: the dynamic scheme's
advantage over the best static base grows with communication cost and with
per-cluster capacity, shrinks when clusters are small.
"""

from repro.experiments.figures import print_sensitivity, sensitivity
from repro.experiments.reporting import geomean

from conftest import bench_trace_length

#: one representative per behaviour class keeps this sweep tractable
#: (5 variants x schemes x benchmarks)
SENSITIVITY_BENCHMARKS = ("cjpeg", "gzip", "swim", "vpr", "djpeg", "mgrid")


def test_sensitivity(benchmark, save_result, sweep_runner):
    results = benchmark.pedantic(
        sensitivity,
        kwargs={
            "benchmarks": SENSITIVITY_BENCHMARKS,
            "trace_length": bench_trace_length(40_000),
            "runner": sweep_runner,
        },
        rounds=1,
        iterations=1,
    )
    text = print_sensitivity(results)
    save_result("sensitivity", text)

    # doubling the hop latency must hurt the 16-cluster static base more
    # than the 4-cluster one (communication-bound regime)
    def gm(variant, scheme):
        return geomean(by[scheme].ipc for by in results[variant].values())

    base_gap = gm("base", "static-16") / gm("base", "static-4")
    slow_gap = gm("double-hop", "static-16") / gm("double-hop", "static-4")
    assert slow_gap < base_gap
