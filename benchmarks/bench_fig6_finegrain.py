"""Figure 6: fine-grained reconfiguration at branch/subroutine boundaries.

Schemes: static 4/16, interval-based exploration, the branch-boundary table
scheme (every 5th branch, 10 samples), and the subroutine-boundary variant
(3 samples).  Paper: fine-grained reaches ~15% over the best static base
versus ~11% for the interval schemes, winning on programs with short
phases (djpeg, cjpeg, crafty, parser, vpr); gzip is the known case where
stale per-branch advice loses to interval-based exploration.
"""

from repro.experiments.figures import figure6, print_figure6
from repro.experiments.reporting import geomean

from conftest import bench_trace_length


def test_fig6_finegrain(benchmark, save_result, sweep_runner):
    results = benchmark.pedantic(
        figure6,
        kwargs={"trace_length": bench_trace_length(), "runner": sweep_runner},
        rounds=1,
        iterations=1,
    )
    text = print_figure6(results)
    save_result("fig6_finegrain", text)

    gm = {
        scheme: geomean(by[scheme].ipc for by in results.values())
        for scheme in next(iter(results.values()))
    }
    best_static = max(gm["static-4"], gm["static-16"])
    # the fine-grained scheme must be competitive with the base cases and
    # with interval-based exploration overall
    assert gm["finegrain-branch"] > best_static * 0.95
    assert gm["finegrain-branch"] > gm["interval-explore"] * 0.95
