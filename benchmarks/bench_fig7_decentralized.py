"""Figure 7: the decentralized (per-cluster-banked) cache model.

Schemes: static 4/16, interval exploration, and no-exploration at two
interval lengths.  Reconfigurations here flush the L1 (the bank mapping
changes), so the fine-grained schemes do not apply.  Paper: the trends
match the centralized model at ~10% improvement, and flush traffic costs
only ~0.3% IPC overall (vpr being the worst case).
"""

from repro.experiments.figures import figure7, print_figure7
from repro.experiments.reporting import geomean

from conftest import bench_trace_length


def test_fig7_decentralized(benchmark, save_result, sweep_runner):
    results = benchmark.pedantic(
        figure7,
        kwargs={"trace_length": bench_trace_length(), "runner": sweep_runner},
        rounds=1,
        iterations=1,
    )
    text = print_figure7(results)
    save_result("fig7_decentralized", text)

    # distant-ILP codes still want 16 clusters under the banked cache
    for bench in ("swim", "mgrid"):
        by = results[bench]
        assert by["static-16"].ipc > by["static-4"].ipc, bench
    # dynamic schemes stay in the best static base's neighbourhood despite
    # paying a full L1 flush per reconfiguration — a cost that weighs ~1000x
    # more at laptop trace scale than in the paper's 100M-instruction runs
    gm = {
        scheme: geomean(by[scheme].ipc for by in results.values())
        for scheme in next(iter(results.values()))
    }
    best_static = max(gm["static-4"], gm["static-16"])
    assert gm["no-explore-2000"] > best_static * 0.85
    # flushes must be bounded: a handful per reconfiguration-prone benchmark
    for bench, by in results.items():
        assert by["interval-explore"].stats.cache_flushes < 100, bench
