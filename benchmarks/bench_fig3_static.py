"""Figure 3: IPC of fixed 2/4/8/16-cluster machines (centralized cache, ring).

Expected shape (paper): the distant-ILP codes — djpeg, swim, mgrid, galgel —
keep improving out to 16 clusters; the branchy integer codes peak at 4-8
clusters and then lose IPC to inter-cluster communication.
"""

from repro.experiments.figures import figure3, print_figure3
from repro.workloads.profiles import DISTANT_ILP_BENCHMARKS

from conftest import bench_trace_length


def test_fig3_static_clusters(benchmark, save_result, sweep_runner):
    results = benchmark.pedantic(
        figure3,
        kwargs={"trace_length": bench_trace_length(), "runner": sweep_runner},
        rounds=1,
        iterations=1,
    )
    text = print_figure3(results)
    save_result("fig3_static_clusters", text)

    # the headline shape: distant-ILP programs scale, the rest do not
    for bench in DISTANT_ILP_BENCHMARKS:
        by = results[bench]
        assert by["static-16"].ipc > by["static-4"].ipc, bench
    vpr = results["vpr"]
    assert vpr["static-16"].ipc <= vpr["static-4"].ipc * 1.10
