"""Timing, serialization, and regression-gate core of the perf harness.

A benchmark is a named callable returning ``(work_units, wall_seconds)``;
the harness derives a throughput metric (units/sec), takes the best of
``repeats`` runs (minimum wall time — the standard way to suppress
scheduler noise on shared runners), and renders everything as JSON.

The regression gate compares a fresh run against the committed
``BENCH_<name>.json``: any metric that drops more than ``tolerance``
(default 15%) below the committed value fails the run.  Metrics are all
higher-is-better throughputs, so the comparison is one-sided — getting
faster never fails.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

SCHEMA_VERSION = 1

#: fractional slowdown tolerated before the gate fails (the ISSUE's 15%)
DEFAULT_TOLERANCE = 0.15

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


@dataclass
class Benchmark:
    """One named benchmark: ``fn`` returns (work_units, wall_seconds)."""

    name: str
    kind: str  # "micro" | "macro"
    unit: str  # e.g. "cycles/sec", "ops/sec"
    fn: Callable[[], Tuple[float, float]]
    #: best-of-5: shared runners show >15% cycle-to-cycle noise at 3 repeats
    repeats: int = 5


@dataclass
class Measurement:
    name: str
    kind: str
    unit: str
    value: float  # best throughput across repeats
    wall_seconds: float  # wall time of the best run
    work_units: float

    def to_json(self) -> Dict:
        return {
            "kind": self.kind,
            "unit": self.unit,
            "value": round(self.value, 2),
            "wall_seconds": round(self.wall_seconds, 4),
            "work_units": self.work_units,
        }


def run_benchmark(bench: Benchmark) -> Measurement:
    best: Optional[Measurement] = None
    for _ in range(max(1, bench.repeats)):
        units, seconds = bench.fn()
        seconds = max(seconds, 1e-9)
        throughput = units / seconds
        if best is None or throughput > best.value:
            best = Measurement(
                name=bench.name,
                kind=bench.kind,
                unit=bench.unit,
                value=throughput,
                wall_seconds=seconds,
                work_units=units,
            )
    return best


def run_suite(benches: List[Benchmark], progress: bool = True) -> List[Measurement]:
    results = []
    for bench in benches:
        t0 = time.perf_counter()
        m = run_benchmark(bench)
        if progress:
            print(
                f"  {bench.name:32s} {m.value:>14,.0f} {m.unit:10s}"
                f" ({time.perf_counter() - t0:.1f}s total)"
            )
        results.append(m)
    return results


def results_payload(
    suite_name: str,
    measurements: List[Measurement],
    baseline: Optional[Dict] = None,
) -> Dict:
    payload = {
        "schema": SCHEMA_VERSION,
        "suite": suite_name,
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "metrics": {m.name: m.to_json() for m in measurements},
    }
    if baseline:
        payload["baseline"] = baseline
    return payload


def bench_path(suite_name: str) -> pathlib.Path:
    return REPO_ROOT / f"BENCH_{suite_name}.json"


def load_committed(suite_name: str) -> Optional[Dict]:
    path = bench_path(suite_name)
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


@dataclass
class GateReport:
    """Outcome of comparing a fresh run against committed numbers."""

    regressions: List[str] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    #: metric names behind ``regressions``, for targeted re-measurement
    regressed_names: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare(
    fresh: List[Measurement],
    committed: Optional[Dict],
    tolerance: float = DEFAULT_TOLERANCE,
) -> GateReport:
    """One-sided throughput gate: fail on >tolerance slowdown per metric."""
    report = GateReport()
    committed_metrics = (committed or {}).get("metrics", {})
    for m in fresh:
        old = committed_metrics.get(m.name)
        if old is None:
            report.missing.append(m.name)
            continue
        old_value = float(old["value"])
        if old_value <= 0:
            continue
        ratio = m.value / old_value
        line = (
            f"{m.name}: {m.value:,.0f} vs committed {old_value:,.0f} "
            f"{m.unit} ({ratio:.2f}x)"
        )
        if ratio < 1.0 - tolerance:
            report.regressions.append(line)
            report.regressed_names.append(m.name)
        elif ratio > 1.0:
            report.improvements.append(line)
    return report
