"""Benchmark definitions: micro per-subsystem + the fig3 macro workload.

All benchmarks are deterministic (fixed seeds, fixed workloads) so that
run-to-run variation comes only from the machine, and the committed
``BENCH_sim_core.json`` numbers are comparable across commits on the same
hardware class.
"""

from __future__ import annotations

import random
import time
from typing import List, Tuple

from .harness import Benchmark

SUITE_NAME = "sim_core"

#: the fig3 static-16 macro workload: one distant-ILP, one branchy-integer,
#: one in-between profile (the shapes that exercise different hot paths)
MACRO_PROFILES = ("swim", "gzip", "vpr")
MACRO_TRACE_LENGTH = 30_000


# ----------------------------------------------------------------------
# macro: the full cycle loop on the Figure 3 static-16 workload.
# Traces are pregenerated OUTSIDE the timed window: the metric is simulator
# core throughput (simulated cycles per wall second), not trace generation.


def _pregenerate(profile: str, length: int, seed: int = 7):
    from repro.workloads import generate_trace, get_profile

    return generate_trace(get_profile(profile), length, seed)


def _bench_fig3_static16() -> Tuple[float, float]:
    """Simulated cycles per wall second on the acceptance workload."""
    from repro.api import simulate

    traces = [_pregenerate(p, MACRO_TRACE_LENGTH) for p in MACRO_PROFILES]
    total_cycles = 0
    t0 = time.perf_counter()
    for trace in traces:
        result = simulate(trace, reconfig_policy="static-16")
        total_cycles += result.stats.cycles
    return float(total_cycles), time.perf_counter() - t0


def _bench_dynamic_explore() -> Tuple[float, float]:
    """Cycles/sec with the interval-explore controller reconfiguring."""
    from repro.api import simulate

    trace = _pregenerate("swim", 20_000)
    t0 = time.perf_counter()
    result = simulate(trace, reconfig_policy="explore")
    return float(result.stats.cycles), time.perf_counter() - t0


def _bench_decentralized() -> Tuple[float, float]:
    """Cycles/sec on the decentralized-cache machine (LSQ broadcast path)."""
    from repro.api import simulate

    trace = _pregenerate("gzip", 15_000)
    t0 = time.perf_counter()
    result = simulate(trace, topology="decentralized")
    return float(result.stats.cycles), time.perf_counter() - t0


# ----------------------------------------------------------------------
# macro: the lockstep batch engine vs the serial backend on the same
# communication-bound spec set.  Narrow static machines (1-2 clusters)
# spend most of their wall time in per-instruction work the fused core
# flattens, so this is where batching pays; `batch_sweep_serial` is the
# denominator that makes the speedup auditable from the committed JSON.

BATCH_SWEEP_LENGTH = 6_000
BATCH_SWEEP_WARMUP = 1_000
#: (profile, static cluster count) — Figure 3's left edge
BATCH_SWEEP_CASES = (("vpr", 1), ("vpr", 2), ("parser", 1), ("crafty", 1))


def _batch_sweep_specs():
    from repro.experiments.sweep import ControllerSpec, RunSpec

    return [
        RunSpec(
            profile,
            BATCH_SWEEP_LENGTH,
            controller=ControllerSpec.static(clusters),
            warmup=BATCH_SWEEP_WARMUP,
            label=f"{profile}-static{clusters}",
        )
        for profile, clusters in BATCH_SWEEP_CASES
    ]


def _drive_backend(kind: str, **kwargs) -> Tuple[float, float]:
    """Measured-window cycles/sec pushing the spec set through a backend."""
    from repro.experiments.backends import create_backend
    from repro.experiments.sweep import _trace_for

    specs = _batch_sweep_specs()
    # pregenerate (memoized) traces so the first repeat is not charged
    # for trace synthesis — the metric is simulator throughput
    for spec in specs:
        _trace_for(spec.profile, spec.trace_length, spec.seed)
    backend = create_backend(kind, **kwargs)
    backend.start()
    try:
        t0 = time.perf_counter()
        for i, spec in enumerate(specs):
            backend.submit(i, spec)
        cycles = 0
        while True:
            completions = backend.drain()
            if not completions:
                break
            for done in completions:
                record = done.record
                if record is None or not record.ok:
                    raise RuntimeError(f"batch_sweep spec failed: {record}")
                cycles += record.result.cycles
        seconds = time.perf_counter() - t0
    finally:
        backend.close()
    return float(cycles), seconds


def _bench_batch_sweep() -> Tuple[float, float]:
    """Cycles/sec through the lockstep batch backend (one process)."""
    return _drive_backend("batch", batch_size=len(BATCH_SWEEP_CASES))


def _bench_batch_sweep_serial() -> Tuple[float, float]:
    """Cycles/sec through the serial backend on the identical spec set."""
    return _drive_backend("serial")


# ----------------------------------------------------------------------
# micro: steering


def _bench_steering_choose() -> Tuple[float, float]:
    """Raw ProducerSteering.choose throughput on a half-loaded machine."""
    from repro.clusters.cluster import Cluster
    from repro.clusters.criticality import CriticalityPredictor
    from repro.clusters.steering import ProducerSteering
    from repro.config import ClusterConfig
    from repro.workloads.instruction import Instr, OpClass

    rng = random.Random(42)
    clusters = [Cluster(k, ClusterConfig()) for k in range(16)]
    # uneven occupancy so every branch of the heuristic runs
    for k, cluster in enumerate(clusters):
        for _ in range(k % 8):
            cluster.allocate(object(), OpClass.INT_ALU, True)
    steering = ProducerSteering(clusters, CriticalityPredictor())
    instrs = [
        Instr(index=i, pc=0x1000 + 4 * (i % 64), op=OpClass.INT_ALU,
              src1=i - 1 if i else -1, src2=i - 2 if i > 1 else -1)
        for i in range(512)
    ]
    producer_sets = [
        [(0, rng.randrange(16))],
        [(0, rng.randrange(16)), (1, rng.randrange(16))],
        [],
    ]
    n = 60_000
    t0 = time.perf_counter()
    for i in range(n):
        steering.choose(instrs[i % 512], producer_sets[i % 3], 16, None)
    return float(n), time.perf_counter() - t0


# ----------------------------------------------------------------------
# micro: interconnect


def _bench_network_transfer() -> Tuple[float, float]:
    """Contended ring transfers scheduled per second."""
    from repro.config import InterconnectConfig
    from repro.interconnect.network import Network

    rng = random.Random(7)
    network = Network(InterconnectConfig(), 16)
    pairs = [(rng.randrange(16), rng.randrange(16)) for _ in range(1024)]
    n = 100_000
    t0 = time.perf_counter()
    for i in range(n):
        src, dst = pairs[i % 1024]
        network.transfer(src, dst, i, kind="register")
    return float(n), time.perf_counter() - t0


# ----------------------------------------------------------------------
# micro: LSQ disambiguation


def _bench_lsq_probe() -> Tuple[float, float]:
    """Load scheduling (allocate/address/probe/release) ops per second."""
    from repro.memory.lsq import CentralizedLSQ, MemAccess

    rng = random.Random(11)
    n = 30_000
    t0 = time.perf_counter()
    lsq = CentralizedLSQ(240)
    index = 0
    live: List[int] = []
    for _ in range(n):
        is_store = rng.random() < 0.4
        access = MemAccess(index, index % 16, rng.randrange(4096) * 4, is_store)
        lsq.allocate(access)
        live.append(index)
        if is_store:
            lsq.store_address_ready(index, index + 2)
        else:
            lsq.load_address_ready(index, index + 2)
            for load in lsq.schedulable_loads():
                lsq.probe_constraints(load)
        index += 1
        while len(live) > 200:
            lsq.release(live.pop(0))
    return float(n), time.perf_counter() - t0


def build_suite() -> List[Benchmark]:
    return [
        Benchmark("fig3_static16", "macro", "cycles/sec", _bench_fig3_static16),
        Benchmark("dynamic_explore", "macro", "cycles/sec", _bench_dynamic_explore),
        Benchmark("decentralized_cache", "macro", "cycles/sec", _bench_decentralized),
        Benchmark("batch_sweep", "macro", "cycles/sec", _bench_batch_sweep),
        Benchmark("batch_sweep_serial", "macro", "cycles/sec",
                  _bench_batch_sweep_serial, repeats=3),
        Benchmark("steering_choose", "micro", "ops/sec", _bench_steering_choose),
        Benchmark("network_transfer", "micro", "ops/sec", _bench_network_transfer),
        Benchmark("lsq_probe", "micro", "ops/sec", _bench_lsq_probe),
    ]
