"""Continuous performance-benchmark harness for the simulator core.

Micro benchmarks time individual subsystems (steering, interconnect, LSQ);
the macro benchmark times the full cycle loop on the Figure 3 static-16
workload — the denominator of every exhibit in the reproduction.  Results
land in ``BENCH_sim_core.json`` at the repo root and CI fails on a >15%
regression against the committed numbers (see docs/PERFORMANCE.md).
"""
