"""Run the perf suite; write/refresh ``BENCH_sim_core.json``; gate CI.

Usage (from the repo root, with ``src`` on PYTHONPATH)::

    python benchmarks/perf/run.py                 # run + rewrite BENCH file
    python benchmarks/perf/run.py --check         # run + fail on >15% regression
    python benchmarks/perf/run.py --check --output fresh.json
    python benchmarks/perf/run.py --update-baseline  # also refresh 'baseline'

``--check`` compares a fresh run against the *committed* BENCH file and
exits nonzero if any metric regressed more than ``--tolerance`` (default
0.15); it never rewrites the committed file unless ``--write`` is added.
The ``baseline`` section records the pre-optimization numbers and is only
touched by ``--update-baseline``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent.parent))

from benchmarks.perf.harness import (  # noqa: E402
    DEFAULT_TOLERANCE,
    bench_path,
    compare,
    load_committed,
    results_payload,
    run_benchmark,
    run_suite,
)
from benchmarks.perf.suite import SUITE_NAME, build_suite  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed BENCH file and "
                             "exit 1 on regression")
    parser.add_argument("--write", action="store_true",
                        help="rewrite the committed BENCH file (default "
                             "unless --check)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="refresh the 'baseline' section from this run")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="also write this run's results to PATH "
                             "(CI artifact)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="fractional slowdown tolerated (default 0.15)")
    args = parser.parse_args(argv)

    committed = load_committed(SUITE_NAME)
    print(f"perf suite '{SUITE_NAME}':")
    suite = build_suite()
    measurements = run_suite(suite)

    status = 0
    if args.check:
        report = compare(measurements, committed, args.tolerance)
        if report.regressed_names and committed is not None:
            # Shared runners show transient >15% dips even at best-of-5;
            # re-measure just the apparent regressions once before failing.
            print(f"  re-measuring {len(report.regressed_names)} apparent "
                  f"regression(s) to rule out scheduler noise...")
            by_name = {b.name: b for b in suite}
            best = {m.name: m for m in measurements}
            for name in report.regressed_names:
                retry = run_benchmark(by_name[name])
                if retry.value > best[name].value:
                    best[name] = retry
            measurements = [best[m.name] for m in measurements]
            report = compare(measurements, committed, args.tolerance)
        for line in report.improvements:
            print(f"  improved   {line}")
        for name in report.missing:
            print(f"  no-baseline {name} (not in committed BENCH file)")
        for line in report.regressions:
            print(f"  REGRESSED  {line}")
        if committed is None:
            print("no committed BENCH file — nothing to gate against")
        elif report.ok:
            print(f"gate OK: no metric regressed more than "
                  f"{args.tolerance:.0%}")
        else:
            print(f"gate FAILED: {len(report.regressions)} metric(s) "
                  f"regressed more than {args.tolerance:.0%}")
            status = 1

    baseline = (committed or {}).get("baseline")
    if args.update_baseline:
        baseline = {
            "note": "refreshed by --update-baseline",
            "metrics": {m.name: m.to_json() for m in measurements},
        }
    payload = results_payload(SUITE_NAME, measurements, baseline)

    if args.output:
        pathlib.Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[results written to {args.output}]")

    if args.write or (not args.check and not args.output):
        path = bench_path(SUITE_NAME)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[committed results refreshed at {path}]")
    return status


if __name__ == "__main__":
    sys.exit(main())
