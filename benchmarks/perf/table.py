"""Render the committed BENCH_sim_core.json as a markdown table.

The bench table in ``docs/PERFORMANCE.md`` is generated, never
hand-edited: after refreshing the committed numbers, paste this script's
output over the table ::

    PYTHONPATH=src python benchmarks/perf/table.py

The derived ``vs baseline`` column is only present for metrics the seed
commit had a measurement for (the batch benches did not exist then;
their reference point is ``batch_sweep_serial`` in the same file).
"""

from __future__ import annotations

import json

from .harness import bench_path

SUITE_NAME = "sim_core"


def render(payload: dict) -> str:
    metrics = payload["metrics"]
    speedups = payload.get("speedup_vs_baseline", {})
    lines = [
        "| Bench | Kind | Committed floor | vs seed baseline |",
        "|---|---|---|---|",
    ]
    for name, m in metrics.items():
        speedup = speedups.get(name)
        lines.append(
            "| `{name}` | {kind} | {value:,.0f} {unit} | {speedup} |".format(
                name=name,
                kind=m["kind"],
                value=m["value"],
                unit=m["unit"],
                speedup=f"{speedup:.2f}x" if speedup is not None else "—",
            )
        )
    return "\n".join(lines)


def main() -> int:
    payload = json.loads(bench_path(SUITE_NAME).read_text())
    print(render(payload))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
