"""Table 3: monolithic-baseline IPC and branch-mispredict interval.

Paper values: IPCs 1.20 (vpr) to 4.07 (djpeg); mispredict intervals 82
(cjpeg) to 22600 (swim).  The expected *shape*: djpeg and galgel lead the
IPC ordering; swim and mgrid barely ever mispredict while the integer codes
mispredict every ~60-250 instructions.
"""

from repro.experiments.tables import print_table3, table3

from conftest import bench_trace_length


def test_table3_baseline(benchmark, save_result, sweep_runner):
    result = benchmark.pedantic(
        table3,
        kwargs={"trace_length": bench_trace_length(), "runner": sweep_runner},
        rounds=1,
        iterations=1,
    )
    text = print_table3(result)
    save_result("table3_baseline", text)
    assert len(result) == 9
    for r in result.values():
        assert r.ipc > 0
