"""Section 4/5 communication-cost breakdown (idealization studies).

The paper quantifies how communication-bound the 16-cluster machine is by
zeroing one communication class at a time: free load/store communication
buys +31% (centralized; +29% decentralized) and free register-to-register
communication +11% (centralized; +27% decentralized).  Expected shape:
both idealizations help, and memory communication dominates under the
centralized cache.
"""

from repro.experiments.figures import idealized_communication, print_idealized
from repro.experiments.reporting import geomean

from conftest import bench_trace_length


def _gm(results, scheme):
    return geomean(by[scheme].ipc for by in results.values())


def test_idealized_centralized(benchmark, save_result, sweep_runner):
    results = benchmark.pedantic(
        idealized_communication,
        kwargs={"trace_length": bench_trace_length(40_000),
                "organization": "centralized", "runner": sweep_runner},
        rounds=1,
        iterations=1,
    )
    text = print_idealized(results, "centralized")
    save_result("idealized_comm_centralized", text)
    base = _gm(results, "baseline")
    assert _gm(results, "free-memory") > base * 1.05
    assert _gm(results, "free-register") > base * 1.01


def test_idealized_decentralized(benchmark, save_result, sweep_runner):
    results = benchmark.pedantic(
        idealized_communication,
        kwargs={"trace_length": bench_trace_length(40_000),
                "organization": "decentralized", "runner": sweep_runner},
        rounds=1,
        iterations=1,
    )
    text = print_idealized(results, "decentralized")
    save_result("idealized_comm_decentralized", text)
    base = _gm(results, "baseline")
    assert _gm(results, "free-memory") > base
    assert _gm(results, "free-register") > base
